// Package dataset provides deterministic synthetic stand-ins for the
// three evaluation corpora of the SSAM paper (Section II-B): the GloVe
// Twitter word-embedding dataset (1.2M x 100), the GIST image
// descriptor dataset (1M x 960), and an AlexNet feature dataset
// (1M x 4096).
//
// Substitution note (DESIGN.md): the real corpora are external
// downloads, so we generate Gaussian-mixture data with the paper's
// dimensionalities and a cluster structure. The property the paper's
// experiments rely on is that the data is clustered enough for
// indexing structures to prune effectively at moderate accuracy
// targets and to degrade toward linear search at high accuracy; a
// Gaussian mixture with per-cluster anisotropic noise reproduces that
// regime. All generation is seeded and reproducible.
package dataset

import (
	"fmt"
	"math/rand"

	"ssam/internal/vec"
)

// Spec describes a synthetic dataset to generate.
type Spec struct {
	Name       string
	N          int // number of database vectors
	Dim        int // dimensionality
	NumQueries int // held-out query vectors
	K          int // the paper's neighbor count for this workload
	Clusters   int // number of mixture components
	ClusterStd float64
	Seed       int64
}

// The paper's full-scale workload parameters.
const (
	GloVeN   = 1200000
	GIST_N   = 1000000
	AlexNetN = 1000000
)

// GloVeSpec returns the GloVe-like workload (100-d word embeddings,
// k=6) scaled by scale in (0, 1].
func GloVeSpec(scale float64) Spec {
	return Spec{
		Name: "glove", N: scaled(GloVeN, scale), Dim: 100,
		NumQueries: 1000, K: 6, Clusters: 128, ClusterStd: 0.35,
		Seed: 0x9107e,
	}
}

// GISTSpec returns the GIST-like workload (960-d image descriptors,
// k=10) scaled by scale.
func GISTSpec(scale float64) Spec {
	return Spec{
		Name: "gist", N: scaled(GIST_N, scale), Dim: 960,
		NumQueries: 1000, K: 10, Clusters: 96, ClusterStd: 0.30,
		Seed: 0x6157,
	}
}

// AlexNetSpec returns the AlexNet-like workload (4096-d CNN features,
// k=16) scaled by scale.
func AlexNetSpec(scale float64) Spec {
	return Spec{
		Name: "alexnet", N: scaled(AlexNetN, scale), Dim: 4096,
		NumQueries: 1000, K: 16, Clusters: 64, ClusterStd: 0.25,
		Seed: 0xa1e7,
	}
}

// AllSpecs returns the three paper workloads at the given scale.
func AllSpecs(scale float64) []Spec {
	return []Spec{GloVeSpec(scale), GISTSpec(scale), AlexNetSpec(scale)}
}

func scaled(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %v out of (0,1]", scale))
	}
	s := int(float64(n) * scale)
	if s < 64 {
		s = 64
	}
	return s
}

// Dataset is a generated corpus: a flattened row-major database plus
// held-out queries, mirroring the paper's "training set to build the
// search index and a test set of 1000 vectors used as the queries".
type Dataset struct {
	Spec    Spec
	Data    []float32 // Spec.N rows of Spec.Dim values
	Queries [][]float32
}

// Generate builds the dataset described by s. Generation is
// deterministic in s.Seed.
func Generate(s Spec) *Dataset {
	if s.N <= 0 || s.Dim <= 0 {
		panic("dataset: nonpositive size")
	}
	if s.Clusters <= 0 {
		s.Clusters = 1
	}
	if s.ClusterStd <= 0 {
		s.ClusterStd = 0.3
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Mixture components: isotropic centers with per-cluster scale so
	// clusters have unequal extents (keeps kd-tree variance cuts
	// meaningful).
	centers := make([][]float32, s.Clusters)
	cstd := make([]float64, s.Clusters)
	for c := range centers {
		row := make([]float32, s.Dim)
		for d := range row {
			row[d] = float32(rng.NormFloat64())
		}
		centers[c] = row
		cstd[c] = s.ClusterStd * (0.5 + rng.Float64())
	}

	sample := func(dst []float32) {
		c := rng.Intn(s.Clusters)
		std := cstd[c]
		ctr := centers[c]
		for d := range dst {
			dst[d] = ctr[d] + float32(rng.NormFloat64()*std)
		}
	}

	ds := &Dataset{Spec: s, Data: make([]float32, s.N*s.Dim)}
	for i := 0; i < s.N; i++ {
		sample(ds.Data[i*s.Dim : (i+1)*s.Dim])
	}
	ds.Queries = make([][]float32, s.NumQueries)
	for i := range ds.Queries {
		q := make([]float32, s.Dim)
		sample(q)
		ds.Queries[i] = q
	}
	return ds
}

// Row returns database vector i as a view into the flattened store.
func (d *Dataset) Row(i int) []float32 {
	dim := d.Spec.Dim
	return d.Data[i*dim : (i+1)*dim]
}

// N returns the number of database vectors.
func (d *Dataset) N() int { return d.Spec.N }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.Spec.Dim }

// Bytes returns the size of the float32 database in bytes.
func (d *Dataset) Bytes() int64 { return int64(len(d.Data)) * 4 }

// Means returns the per-dimension mean of the database, the customary
// threshold vector for sign binarization.
func (d *Dataset) Means() []float32 {
	dim := d.Spec.Dim
	sums := make([]float64, dim)
	for i := 0; i < d.Spec.N; i++ {
		row := d.Row(i)
		for j, v := range row {
			sums[j] += float64(v)
		}
	}
	out := make([]float32, dim)
	for j, s := range sums {
		out[j] = float32(s / float64(d.Spec.N))
	}
	return out
}

// ToFixed converts the database to Q16.16 fixed point (Section II-D).
func (d *Dataset) ToFixed() []int32 {
	out := make([]int32, len(d.Data))
	for i, v := range d.Data {
		out[i] = vec.ToFixed(v)
	}
	return out
}

// ToBinary sign-binarizes every database row against the dataset means,
// producing Hamming-space codes of Dim bits.
func (d *Dataset) ToBinary() []vec.Binary {
	th := d.Means()
	out := make([]vec.Binary, d.Spec.N)
	for i := range out {
		out[i] = vec.SignBinarize(d.Row(i), th)
	}
	return out
}
