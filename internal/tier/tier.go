// Package tier implements the out-of-core vector store behind
// ssam.Config.Storage: a region's float32 dataset lives in a backing
// file partitioned into vault-granularity pages (the same contiguous
// chunking the vault-parallel scan uses), and queries read pages
// through an admission-controlled hot-vault cache bounded by a
// configurable memory budget. The file is the source of truth; the
// cache only ever holds byte-identical copies of its pages, which is
// what makes out-of-core search results bit-identical to the in-RAM
// engines on the same data.
//
// Cache policy: clock (second-chance) eviction over resident pages.
// Pages pinned by an in-progress scan are never evicted — Acquire pins,
// Release unpins — so a budget smaller than one page degrades to
// read-scan-drop streaming rather than failing. Prefetch overlaps the
// next cold vault's read with the current vault's scan.
//
// The store is a deliberate test seam: reads go through an injectable
// fault hook, a fake clock drives the slow-read detector, and an
// eviction hook lets tests poison dropped pages to prove no reader
// holds one (use-after-evict shows up as NaN distances, never as a
// silently wrong neighbor).
package tier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// File layout: a fixed 32-byte header followed by n·dim float32 rows,
// row-major, little-endian.
const (
	magic      = "SSAMTIER"
	version    = 1
	headerSize = 32
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("tier: store is closed")

// ReadError is a failed backing-store read for one vault page. Engines
// surface it (wrapped) instead of returning partial or wrong neighbors.
type ReadError struct {
	Vault int
	Err   error
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("tier: vault %d read failed: %v", e.Vault, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// SlowReadError reports a vault read that exceeded the configured
// ReadTimeout. The data was read but is discarded: a degraded storage
// device must surface as a typed error the serving layer can act on,
// not as silently slow (or stale) results.
type SlowReadError struct {
	Vault   int
	Elapsed time.Duration
	Limit   time.Duration
}

func (e *SlowReadError) Error() string {
	return fmt.Sprintf("tier: vault %d read took %v, limit %v", e.Vault, e.Elapsed, e.Limit)
}

// Options configures an opened store.
type Options struct {
	// BudgetBytes bounds the resident page cache; 0 means unlimited
	// (every page stays resident once read). Pinned pages may push
	// residency above the budget transiently; eviction restores it as
	// soon as pins drop.
	BudgetBytes int64
	// Prefetch enables overlapping the next cold vault's read with the
	// current vault's scan (engines call Prefetch; the option gates it).
	Prefetch bool
	// ReadTimeout, when positive, turns vault reads slower than this
	// into SlowReadError (measured on the store's clock, which tests
	// replace with a fake).
	ReadTimeout time.Duration
}

// Counters is a point-in-time snapshot of the store's cumulative work,
// safe to read concurrently with searches. The server exports it as
// /metrics series and the /statsz tiered block.
type Counters struct {
	Reads         uint64 // vault reads issued against the backing file
	BytesRead     uint64 // bytes read from the backing file
	CacheHits     uint64 // acquires satisfied by a resident page
	CacheMisses   uint64 // acquires that had to issue a read
	Evictions     uint64 // pages dropped by the clock policy
	PrefetchHits  uint64 // acquires satisfied by a completed prefetch
	Stalls        uint64 // acquires that waited on an in-flight read
	ResidentBytes int64  // current cache residency
	ResidentPages int
	BudgetBytes   int64
}

// page is one vault's resident (or loading) cache entry.
type page struct {
	vault      int
	data       []float32
	refs       int           // pins; >0 blocks eviction
	loading    bool          // read in flight
	ready      chan struct{} // closed when the load settles
	hot        bool          // clock reference bit
	prefetched bool          // loaded by Prefetch, not yet acquired
}

// Store serves vault pages of one backing file through a budgeted
// cache. All methods are safe for concurrent use.
type Store struct {
	f      *os.File
	path   string
	dim    int
	n      int
	vaults int
	chunk  int // rows per vault page (last page may be short)

	budget      int64
	prefetch    bool
	readTimeout time.Duration

	// Test seams. Set before serving traffic; nil means no-op/real.
	readHook  func(vault int) error           // runs before each backing read
	evictHook func(vault int, data []float32) // runs as a page is dropped
	now       func() time.Time                // slow-read clock

	mu            sync.Mutex
	closed        bool
	pages         []*page // by vault; nil = not resident
	hand          int     // clock hand
	residentBytes int64

	reads, bytesRead, hits, misses  atomic.Uint64
	evictions, prefetchHits, stalls atomic.Uint64
}

// WriteFile writes a flattened row-major float32 dataset as a tier
// backing file partitioned into vaults pages (the same contiguous
// chunking the vault-parallel scan uses). vaults must be positive and
// data a positive multiple of dim.
func WriteFile(path string, data []float32, dim, vaults int) error {
	if dim <= 0 || len(data) == 0 || len(data)%dim != 0 {
		return fmt.Errorf("tier: data length %d not a positive multiple of dim %d", len(data), dim)
	}
	if vaults <= 0 {
		return fmt.Errorf("tier: vaults must be positive, got %d", vaults)
	}
	n := len(data) / dim
	if vaults > n {
		vaults = n
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(vaults))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(n))
	buf := make([]byte, headerSize+len(data)*4)
	copy(buf, hdr)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[headerSize+i*4:], math.Float32bits(v))
	}
	return os.WriteFile(path, buf, 0o644)
}

// Open opens a backing file written by WriteFile.
func Open(path string, opts Options) (*Store, error) {
	if opts.BudgetBytes < 0 {
		return nil, fmt.Errorf("tier: budget must be non-negative, got %d", opts.BudgetBytes)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tier: %s: reading header: %w", path, err)
	}
	if string(hdr[:8]) != magic {
		f.Close()
		return nil, fmt.Errorf("tier: %s is not a tier backing file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != version {
		f.Close()
		return nil, fmt.Errorf("tier: %s: unsupported version %d", path, v)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[12:]))
	vaults := int(binary.LittleEndian.Uint32(hdr[16:]))
	n := int(binary.LittleEndian.Uint64(hdr[20:]))
	if dim <= 0 || n <= 0 || vaults <= 0 || vaults > n {
		f.Close()
		return nil, fmt.Errorf("tier: %s: corrupt header (dim=%d n=%d vaults=%d)", path, dim, n, vaults)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(headerSize) + int64(n)*int64(dim)*4; fi.Size() < want {
		f.Close()
		return nil, fmt.Errorf("tier: %s: truncated (%d bytes, want %d)", path, fi.Size(), want)
	}
	return &Store{
		f:           f,
		path:        path,
		dim:         dim,
		n:           n,
		vaults:      vaults,
		chunk:       (n + vaults - 1) / vaults,
		budget:      opts.BudgetBytes,
		prefetch:    opts.Prefetch,
		readTimeout: opts.ReadTimeout,
		now:         time.Now,
		pages:       make([]*page, vaults),
	}, nil
}

// Create writes data to path and opens it — the region build path.
func Create(path string, data []float32, dim, vaults int, opts Options) (*Store, error) {
	if err := WriteFile(path, data, dim, vaults); err != nil {
		return nil, err
	}
	return Open(path, opts)
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Rows returns the dataset row count.
func (s *Store) Rows() int { return s.n }

// Vaults returns the page count.
func (s *Store) Vaults() int { return s.vaults }

// BudgetBytes returns the configured cache budget (0 = unlimited).
func (s *Store) BudgetBytes() int64 { return s.budget }

// PrefetchEnabled reports whether the store was opened with prefetch.
func (s *Store) PrefetchEnabled() bool { return s.prefetch }

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// PageOf returns the vault page holding global row i.
func (s *Store) PageOf(i int) int { return i / s.chunk }

// PageRows returns the global row range [lo, hi) of vault page v.
func (s *Store) PageRows(v int) (lo, hi int) {
	lo = v * s.chunk
	hi = lo + s.chunk
	if hi > s.n {
		hi = s.n
	}
	return lo, hi
}

// SetReadHook installs a hook run before every backing-file read (fault
// injection: a non-nil error aborts the read as a ReadError). Set
// before serving traffic.
func (s *Store) SetReadHook(h func(vault int) error) { s.readHook = h }

// SetEvictHook installs a hook run as a page is dropped from the cache,
// receiving the page's backing slice (the poisoned-page test double
// overwrites it to prove no reader still holds it). Runs under the
// store lock. Set before serving traffic.
func (s *Store) SetEvictHook(h func(vault int, data []float32)) { s.evictHook = h }

// SetClock replaces the slow-read clock (test seam for deterministic
// SlowReadError coverage). Set before serving traffic.
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// Counters returns a snapshot of the cumulative work counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	resident := s.residentBytes
	residentPages := 0
	for _, p := range s.pages {
		if p != nil && !p.loading {
			residentPages++
		}
	}
	s.mu.Unlock()
	return Counters{
		Reads:         s.reads.Load(),
		BytesRead:     s.bytesRead.Load(),
		CacheHits:     s.hits.Load(),
		CacheMisses:   s.misses.Load(),
		Evictions:     s.evictions.Load(),
		PrefetchHits:  s.prefetchHits.Load(),
		Stalls:        s.stalls.Load(),
		ResidentBytes: resident,
		ResidentPages: residentPages,
		BudgetBytes:   s.budget,
	}
}

// Page is a pinned, resident vault page. Release it when the scan is
// done; the data slice must not be used after Release.
type Page struct {
	s        *Store
	p        *page
	hit      bool
	released bool
}

// CacheHit reports whether this acquire was served from the resident
// cache (true) or had to read the backing file (false). Span tags use
// it to show per-vault cache behavior in /tracez.
func (pg *Page) CacheHit() bool { return pg.hit }

// Data returns the page's rows, flattened row-major.
func (pg *Page) Data() []float32 { return pg.p.data }

// Rows returns the page's global row range [lo, hi).
func (pg *Page) Rows() (lo, hi int) { return pg.s.PageRows(pg.p.vault) }

// Row returns the vector at global row index i (which must lie inside
// the page's range).
func (pg *Page) Row(i int) []float32 {
	lo, _ := pg.Rows()
	off := (i - lo) * pg.s.dim
	return pg.p.data[off : off+pg.s.dim]
}

// Release unpins the page. Idempotent.
func (pg *Page) Release() {
	if pg.released {
		return
	}
	pg.released = true
	s := pg.s
	s.mu.Lock()
	pg.p.refs--
	if pg.p.refs == 0 {
		// The page just became evictable: restore the budget now rather
		// than waiting for the next miss, so a pinned overshoot is
		// transient by construction.
		s.evictLocked(nil)
	}
	s.mu.Unlock()
}

// Acquire pins vault page v, reading it from the backing file on a
// cache miss. Concurrent acquires of the same cold page issue one read
// (waiters count as stalls). The returned page stays resident until
// released, regardless of budget.
func (s *Store) Acquire(v int) (*Page, error) {
	if v < 0 || v >= s.vaults {
		return nil, fmt.Errorf("tier: vault %d out of range [0,%d)", v, s.vaults)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, ErrClosed
		}
		hit := false
		p := s.pages[v]
		switch {
		case p == nil:
			p = &page{vault: v, loading: true, ready: make(chan struct{})}
			s.pages[v] = p
			s.misses.Add(1)
			data, err := s.readVault(v) // drops the lock around the IO
			if err != nil {
				s.pages[v] = nil
				close(p.ready)
				return nil, err
			}
			p.data = data
			p.loading = false
			s.residentBytes += int64(len(data)) * 4
			close(p.ready)
			s.evictLocked(p)
		case p.loading:
			// Someone else is reading this page: wait for the read to
			// settle, then re-examine (it may have failed and vanished, in
			// which case this acquire retries as a fresh miss).
			s.stalls.Add(1)
			ready := p.ready
			s.mu.Unlock()
			<-ready
			s.mu.Lock()
			continue
		default:
			hit = true
			s.hits.Add(1)
			if p.prefetched {
				p.prefetched = false
				s.prefetchHits.Add(1)
			}
		}
		p = s.pages[v]
		p.refs++
		p.hot = true
		return &Page{s: s, p: p, hit: hit}, nil
	}
}

// Prefetch starts an asynchronous read of vault page v if it is neither
// resident nor already loading. A no-op when the store was opened
// without Prefetch; read failures are dropped (the demand Acquire
// retries and surfaces them).
func (s *Store) Prefetch(v int) {
	if !s.prefetch || v < 0 || v >= s.vaults {
		return
	}
	s.mu.Lock()
	if s.closed || s.pages[v] != nil {
		s.mu.Unlock()
		return
	}
	p := &page{vault: v, loading: true, prefetched: true, ready: make(chan struct{})}
	s.pages[v] = p
	s.mu.Unlock()
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		data, err := s.readVault(v) // drops the lock around the IO
		if err != nil || s.closed {
			s.pages[v] = nil
			close(p.ready)
			return
		}
		p.data = data
		p.loading = false
		s.residentBytes += int64(len(data)) * 4
		close(p.ready)
		s.evictLocked(p)
	}()
}

// readVault reads one vault page from the backing file. Called with
// s.mu held; the lock is dropped for the IO and re-taken, which is safe
// because the caller has already published a loading page entry that
// serializes access to this vault.
func (s *Store) readVault(v int) ([]float32, error) {
	s.mu.Unlock()
	data, err := s.readVaultIO(v)
	s.mu.Lock()
	return data, err
}

func (s *Store) readVaultIO(v int) ([]float32, error) {
	start := s.now()
	if h := s.readHook; h != nil {
		if err := h(v); err != nil {
			return nil, &ReadError{Vault: v, Err: err}
		}
	}
	lo, hi := s.PageRows(v)
	buf := make([]byte, (hi-lo)*s.dim*4)
	off := int64(headerSize) + int64(lo)*int64(s.dim)*4
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, &ReadError{Vault: v, Err: err}
	}
	if s.readTimeout > 0 {
		if el := s.now().Sub(start); el > s.readTimeout {
			return nil, &SlowReadError{Vault: v, Elapsed: el, Limit: s.readTimeout}
		}
	}
	data := make([]float32, (hi-lo)*s.dim)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	s.reads.Add(1)
	s.bytesRead.Add(uint64(len(buf)))
	return data, nil
}

// evictLocked drops unpinned pages under the clock policy until
// residency fits the budget. keep, if non-nil, is exempt (the page the
// caller is about to pin). All pages pinned means the overshoot stands
// until a Release re-runs eviction.
func (s *Store) evictLocked(keep *page) {
	if s.budget <= 0 {
		return
	}
	for s.residentBytes > s.budget {
		victim := s.clockVictimLocked(keep)
		if victim == nil {
			return
		}
		s.dropLocked(victim)
	}
}

// clockVictimLocked sweeps the clock hand over resident pages: a hot
// page gets its reference bit cleared (second chance), the first cold
// unpinned page is the victim. Two full sweeps with no victim means
// everything evictable is pinned.
func (s *Store) clockVictimLocked(keep *page) *page {
	for i := 0; i < 2*s.vaults; i++ {
		p := s.pages[s.hand]
		s.hand = (s.hand + 1) % s.vaults
		if p == nil || p.loading || p.refs > 0 || p == keep {
			continue
		}
		if p.hot {
			p.hot = false
			continue
		}
		return p
	}
	return nil
}

func (s *Store) dropLocked(p *page) {
	s.pages[p.vault] = nil
	s.residentBytes -= int64(len(p.data)) * 4
	s.evictions.Add(1)
	if h := s.evictHook; h != nil {
		h(p.vault, p.data)
	}
}

// Close drops the cache and closes the backing file. Outstanding pages
// must be released first; subsequent operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for i, p := range s.pages {
		if p != nil && !p.loading {
			s.pages[i] = nil
		}
	}
	s.residentBytes = 0
	s.mu.Unlock()
	return s.f.Close()
}
