package tier

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testData returns a deterministic n×dim dataset.
func testData(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dim)
	for i := range data {
		data[i] = rng.Float32()
	}
	return data
}

func mustCreate(t *testing.T, data []float32, dim, vaults int, opts Options) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tier.dat")
	s, err := Create(path, data, dim, vaults, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	const n, dim, vaults = 37, 5, 4
	data := testData(n, dim, 1)
	s := mustCreate(t, data, dim, vaults, Options{})
	if s.Rows() != n || s.Dim() != dim || s.Vaults() != vaults {
		t.Fatalf("shape = %d x %d over %d vaults, want %d x %d over %d",
			s.Rows(), s.Dim(), s.Vaults(), n, dim, vaults)
	}
	seen := 0
	for v := 0; v < s.Vaults(); v++ {
		pg, err := s.Acquire(v)
		if err != nil {
			t.Fatalf("Acquire(%d): %v", v, err)
		}
		lo, hi := pg.Rows()
		for i := lo; i < hi; i++ {
			row := pg.Row(i)
			for j, got := range row {
				if want := data[i*dim+j]; got != want {
					t.Fatalf("row %d dim %d = %v, want %v", i, j, got, want)
				}
			}
			seen++
		}
		pg.Release()
	}
	if seen != n {
		t.Fatalf("pages covered %d rows, want %d", seen, n)
	}
}

func TestPageRowsPartition(t *testing.T) {
	// 10 rows over 4 vaults: chunk 3 → pages of 3,3,3,1.
	s := mustCreate(t, testData(10, 2, 2), 2, 4, Options{})
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	for v, w := range want {
		lo, hi := s.PageRows(v)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("PageRows(%d) = [%d,%d), want [%d,%d)", v, lo, hi, w[0], w[1])
		}
	}
}

func TestVaultsClampToRows(t *testing.T) {
	// More vaults than rows: writer clamps so every page is non-empty.
	s := mustCreate(t, testData(3, 2, 3), 2, 8, Options{})
	if s.Vaults() != 3 {
		t.Fatalf("vaults = %d, want 3 (clamped to row count)", s.Vaults())
	}
}

func TestWriteFileValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dat")
	if err := WriteFile(path, []float32{1, 2, 3}, 2, 1); err == nil {
		t.Fatal("WriteFile accepted data not a multiple of dim")
	}
	if err := WriteFile(path, nil, 2, 1); err == nil {
		t.Fatal("WriteFile accepted empty data")
	}
	if err := WriteFile(path, []float32{1, 2}, 2, 0); err == nil {
		t.Fatal("WriteFile accepted zero vaults")
	}
}

func TestOpenValidation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.dat")
	if err := WriteFile(good, testData(8, 2, 4), 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(good, Options{BudgetBytes: -1}); err == nil {
		t.Fatal("Open accepted a negative budget")
	}
	if _, err := Open(filepath.Join(dir, "absent.dat"), Options{}); err == nil {
		t.Fatal("Open accepted a missing file")
	}
	junk := filepath.Join(dir, "junk.dat")
	if err := os.WriteFile(junk, []byte("not a tier file at all......."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk, Options{}); err == nil {
		t.Fatal("Open accepted a non-tier file")
	}
	// Truncated body: valid header, missing rows.
	full, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.dat")
	if err := os.WriteFile(trunc, full[:len(full)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc, Options{}); err == nil {
		t.Fatal("Open accepted a truncated file")
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	s := mustCreate(t, testData(40, 4, 4), 4, 4, Options{})
	for pass := 0; pass < 3; pass++ {
		for v := 0; v < s.Vaults(); v++ {
			pg, err := s.Acquire(v)
			if err != nil {
				t.Fatal(err)
			}
			pg.Release()
		}
	}
	c := s.Counters()
	if c.CacheMisses != 4 {
		t.Fatalf("misses = %d, want 4 (one per page, unlimited budget)", c.CacheMisses)
	}
	if c.CacheHits != 8 {
		t.Fatalf("hits = %d, want 8", c.CacheHits)
	}
	if c.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 under unlimited budget", c.Evictions)
	}
	if c.Reads != 4 || c.BytesRead != 40*4*4 {
		t.Fatalf("reads = %d bytes = %d, want 4 reads of %d bytes total", c.Reads, c.BytesRead, 40*4*4)
	}
	if c.ResidentPages != 4 || c.ResidentBytes != 40*4*4 {
		t.Fatalf("resident = %d pages %d bytes, want all 4 pages", c.ResidentPages, c.ResidentBytes)
	}
}

func TestBudgetEviction(t *testing.T) {
	// 4 pages of 10 rows × 4 dims × 4 bytes = 160 bytes each; budget
	// holds exactly two.
	s := mustCreate(t, testData(40, 4, 5), 4, 4, Options{BudgetBytes: 320})
	for v := 0; v < 4; v++ {
		pg, err := s.Acquire(v)
		if err != nil {
			t.Fatal(err)
		}
		pg.Release()
	}
	c := s.Counters()
	if c.ResidentBytes > 320 {
		t.Fatalf("resident %d bytes exceeds 320-byte budget after releases", c.ResidentBytes)
	}
	if c.Evictions == 0 {
		t.Fatal("no evictions under a 2-page budget with 4 pages touched")
	}
	if c.ResidentPages != 2 {
		t.Fatalf("resident pages = %d, want 2", c.ResidentPages)
	}
}

func TestBudgetSmallerThanOnePage(t *testing.T) {
	// Budget below one page: every scan streams read-scan-drop, but
	// acquires never fail — the pinned page overshoots transiently.
	s := mustCreate(t, testData(40, 4, 6), 4, 4, Options{BudgetBytes: 64})
	for pass := 0; pass < 2; pass++ {
		for v := 0; v < 4; v++ {
			pg, err := s.Acquire(v)
			if err != nil {
				t.Fatal(err)
			}
			if len(pg.Data()) != 40 {
				t.Fatalf("page %d has %d floats, want 40", v, len(pg.Data()))
			}
			pg.Release()
		}
	}
	c := s.Counters()
	if c.CacheMisses != 8 {
		t.Fatalf("misses = %d, want 8 (nothing can stay resident)", c.CacheMisses)
	}
	if c.ResidentBytes != 0 {
		t.Fatalf("resident = %d bytes after releases, want 0", c.ResidentBytes)
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	// Hold every page pinned with a budget of one page: nothing may be
	// evicted while pinned, and the data must stay valid.
	data := testData(40, 4, 7)
	s := mustCreate(t, data, 4, 4, Options{BudgetBytes: 160})
	var pages []*Page
	for v := 0; v < 4; v++ {
		pg, err := s.Acquire(v)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pg)
	}
	if c := s.Counters(); c.Evictions != 0 {
		t.Fatalf("evicted %d pinned pages", c.Evictions)
	}
	for v, pg := range pages {
		lo, _ := pg.Rows()
		if got, want := pg.Row(lo)[0], data[lo*4]; got != want {
			t.Fatalf("pinned page %d row %d = %v, want %v", v, lo, got, want)
		}
		pg.Release()
	}
	if c := s.Counters(); c.ResidentBytes > 160 {
		t.Fatalf("resident %d bytes after releases, want <= one-page budget", c.ResidentBytes)
	}
}

func TestClockSecondChance(t *testing.T) {
	// Two-page budget over four pages. Touch 0 and 1, then stream 2 and
	// 3: the clock must rotate victims rather than thrash one slot.
	s := mustCreate(t, testData(40, 4, 8), 4, 4, Options{BudgetBytes: 320})
	for _, v := range []int{0, 1, 2, 3, 0, 1, 2, 3} {
		pg, err := s.Acquire(v)
		if err != nil {
			t.Fatal(err)
		}
		pg.Release()
	}
	c := s.Counters()
	if c.ResidentPages != 2 {
		t.Fatalf("resident pages = %d, want 2", c.ResidentPages)
	}
	if c.Evictions < 4 {
		t.Fatalf("evictions = %d, want >= 4 across two sweeps", c.Evictions)
	}
}

func TestConcurrentAcquireSingleRead(t *testing.T) {
	s := mustCreate(t, testData(64, 8, 9), 8, 2, Options{})
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pg, err := s.Acquire(0)
			if err != nil {
				errs <- err
				return
			}
			pg.Release()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Reads != 1 {
		t.Fatalf("reads = %d, want 1 (concurrent cold acquires must coalesce)", c.Reads)
	}
	if c.CacheMisses != 1 {
		t.Fatalf("misses = %d, want 1", c.CacheMisses)
	}
	if c.CacheHits+c.Stalls < goroutines-1 {
		t.Fatalf("hits %d + stalls %d don't account for %d waiters", c.CacheHits, c.Stalls, goroutines-1)
	}
}

func TestPrefetch(t *testing.T) {
	s := mustCreate(t, testData(40, 4, 10), 4, 4, Options{Prefetch: true})
	s.Prefetch(2)
	// Acquire blocks until the prefetch settles, then counts a hit.
	pg, err := s.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	pg.Release()
	c := s.Counters()
	if c.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", c.PrefetchHits)
	}
	if c.CacheMisses != 0 {
		t.Fatalf("misses = %d, want 0 (prefetch absorbed the cold read)", c.CacheMisses)
	}
	// Prefetch of a resident page is a no-op.
	s.Prefetch(2)
	if c := s.Counters(); c.Reads != 1 {
		t.Fatalf("reads = %d after redundant prefetch, want 1", c.Reads)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	s := mustCreate(t, testData(40, 4, 11), 4, 4, Options{})
	s.Prefetch(1)
	if c := s.Counters(); c.Reads != 0 {
		t.Fatalf("prefetch read %d pages with Prefetch off", c.Reads)
	}
}

func TestAcquireOutOfRange(t *testing.T) {
	s := mustCreate(t, testData(8, 2, 12), 2, 2, Options{})
	if _, err := s.Acquire(-1); err == nil {
		t.Fatal("Acquire(-1) succeeded")
	}
	if _, err := s.Acquire(2); err == nil {
		t.Fatal("Acquire(vaults) succeeded")
	}
}

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	s := mustCreate(t, testData(8, 2, 13), 2, 2, Options{})
	pg, err := s.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	pg.Release()
	pg.Release() // must not underflow refs
	pg2, err := s.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	pg2.Release()
}

func TestClose(t *testing.T) {
	s := mustCreate(t, testData(8, 2, 14), 2, 2, Options{})
	pg, err := s.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	pg.Release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Acquire(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
	if c := s.Counters(); c.ResidentBytes != 0 {
		t.Fatalf("resident %d bytes after Close", c.ResidentBytes)
	}
}
