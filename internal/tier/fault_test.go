package tier

// Fault injection for the storage tier: the contract under test is
// that a degraded or failing backing store surfaces as a typed error —
// never as wrong data — and that eviction under concurrent traffic
// never lets a reader keep an evicted page (proved with a poisoned-page
// double: evicted slices are overwritten with NaN, so any
// use-after-evict would corrupt a visible row).

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestReadHookErrorIsTyped(t *testing.T) {
	s := mustCreate(t, testData(40, 4, 20), 4, 4, Options{})
	boom := errors.New("injected io failure")
	s.SetReadHook(func(vault int) error {
		if vault == 2 {
			return boom
		}
		return nil
	})
	if pg, err := s.Acquire(1); err != nil {
		t.Fatalf("healthy vault: %v", err)
	} else {
		pg.Release()
	}
	_, err := s.Acquire(2)
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("Acquire(2) = %v, want *ReadError", err)
	}
	if re.Vault != 2 || !errors.Is(err, boom) {
		t.Fatalf("ReadError = %+v, want vault 2 wrapping the injected error", re)
	}
	// A failed load must not leave a stuck loading entry: clearing the
	// fault makes the same vault readable again.
	s.SetReadHook(nil)
	pg, err := s.Acquire(2)
	if err != nil {
		t.Fatalf("Acquire(2) after clearing the fault: %v", err)
	}
	pg.Release()
}

func TestConcurrentAcquireOfFailingVault(t *testing.T) {
	s := mustCreate(t, testData(40, 4, 21), 4, 2, Options{})
	s.SetReadHook(func(int) error { return errors.New("dead device") })
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = s.Acquire(0)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		var re *ReadError
		if !errors.As(err, &re) {
			t.Fatalf("goroutine %d: err = %v, want *ReadError", g, err)
		}
	}
}

func TestSlowReadSurfacesAsTypedError(t *testing.T) {
	path := t.TempDir() + "/slow.dat"
	if err := WriteFile(path, testData(40, 4, 22), 4, 4); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{ReadTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Fake clock: each read of vault 3 "takes" 50ms; everything else is
	// instantaneous. The hook advances the clock, the store measures it.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	s.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	s.SetReadHook(func(vault int) error {
		if vault == 3 {
			mu.Lock()
			now = now.Add(50 * time.Millisecond)
			mu.Unlock()
		}
		return nil
	})
	if pg, err := s.Acquire(0); err != nil {
		t.Fatalf("fast vault: %v", err)
	} else {
		pg.Release()
	}
	_, err = s.Acquire(3)
	var se *SlowReadError
	if !errors.As(err, &se) {
		t.Fatalf("Acquire(3) = %v, want *SlowReadError", err)
	}
	if se.Vault != 3 || se.Elapsed != 50*time.Millisecond || se.Limit != 5*time.Millisecond {
		t.Fatalf("SlowReadError = %+v, want vault 3, 50ms elapsed, 5ms limit", se)
	}
}

func TestErrorStrings(t *testing.T) {
	re := &ReadError{Vault: 7, Err: errors.New("eio")}
	if re.Error() == "" || re.Unwrap() == nil {
		t.Fatal("ReadError must format and unwrap")
	}
	se := &SlowReadError{Vault: 7, Elapsed: time.Second, Limit: time.Millisecond}
	if se.Error() == "" {
		t.Fatal("SlowReadError must format")
	}
}

// TestEvictionSoakNoUseAfterEvict hammers a store whose budget holds
// only one of four pages from many goroutines while the eviction hook
// poisons every dropped page with NaN. Every row read through a pinned
// page must still match the source data: a scan holding a page across
// its own eviction would observe the poison.
func TestEvictionSoakNoUseAfterEvict(t *testing.T) {
	const n, dim, vaults = 64, 4, 4
	data := testData(n, dim, 23)
	s := mustCreate(t, data, dim, vaults, Options{BudgetBytes: n / vaults * dim * 4})
	nan := float32(math.NaN())
	s.SetEvictHook(func(vault int, page []float32) {
		for i := range page {
			page[i] = nan
		}
	})
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				v := (g + it) % vaults
				pg, err := s.Acquire(v)
				if err != nil {
					errs <- err
					return
				}
				lo, hi := pg.Rows()
				for i := lo; i < hi; i++ {
					row := pg.Row(i)
					for j, got := range row {
						if want := data[i*dim+j]; got != want {
							errs <- fmt.Errorf("vault %d row %d dim %d = %v, want %v (use-after-evict?)",
								v, i, j, got, want)
							pg.Release()
							return
						}
					}
				}
				pg.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c := s.Counters(); c.Evictions == 0 {
		t.Fatal("soak produced no evictions; the budget is not forcing turnover")
	}
}
