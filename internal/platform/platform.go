// Package platform models the heterogeneous baselines the paper
// compares SSAM against (Section IV): a six-core Xeon E5-2620, an
// NVIDIA Titan X running Garcia et al.'s GPU kNN, and a Xilinx
// Kintex-7 carrying the SSAM logic as a soft vector core. We have none
// of that hardware, so each platform is a roofline model for the exact
// linear-scan workload: streaming the entire database once per query
// bounds throughput by memory bandwidth, discounted by a measured-
// implementation efficiency factor (real libraries do not hit peak
// stream bandwidth: top-k bookkeeping, strided access, kernel launch
// and reduction overheads). Envelope parameters (die area normalized
// to 28 nm, measured dynamic power, bandwidth) come from the paper's
// citations; efficiency factors are calibrated so the cross-platform
// ratios land in the ranges Fig. 6 reports. The SSAM itself is NOT
// modeled here — its numbers come from the cycle simulator.
package platform

import "fmt"

// Platform is one baseline's envelope.
type Platform struct {
	Name string
	// AreaMM2 is the die area normalized to 28 nm.
	AreaMM2 float64
	// DynamicPowerW is the measured load-minus-idle power draw (the
	// paper's power-meter methodology).
	DynamicPowerW float64
	// MemBandwidth is usable memory bandwidth in bytes/second.
	MemBandwidth float64
	// Efficiency is the fraction of the bandwidth roofline a measured
	// linear-scan kNN implementation sustains on this platform.
	Efficiency float64
	// BatchOverheadS is fixed per-query overhead (dispatch, reduction).
	BatchOverheadS float64
}

// XeonE5 returns the CPU baseline: Sandy Bridge-EP six-core, die
// normalized to 28 nm, 25 GB/s DDR3 ("optimistically, standard DRAM
// modules provide up to 25 GB/s"). Efficiency reflects measured FLANN
// linear search (scalarish inner loops plus top-k maintenance).
func XeonE5() Platform {
	return Platform{
		Name:           "cpu-xeon-e5-2620",
		AreaMM2:        435 * (28.0 / 32.0) * (28.0 / 32.0), // ~333 mm^2
		DynamicPowerW:  55,
		MemBandwidth:   25e9,
		Efficiency:     0.15,
		BatchOverheadS: 2e-6,
	}
}

// TitanX returns the GPU baseline (GM200, 28 nm, 336.5 GB/s GDDR5).
// Garcia et al.'s brute-force kNN is bandwidth-bound with moderate
// efficiency after the distance matrix + selection passes.
func TitanX() Platform {
	return Platform{
		Name:           "gpu-titan-x",
		AreaMM2:        601,
		DynamicPowerW:  180,
		MemBandwidth:   336.5e9,
		Efficiency:     0.45,
		BatchOverheadS: 20e-6,
	}
}

// Kintex7 returns the FPGA baseline: the SSAM acceleration logic as a
// soft vector core on a Kintex-7 over DDR3 ("the FPGA in some cases
// underperforms the GPU since it effectively implements a soft vector
// core"). The soft core clocks low but streams efficiently.
func Kintex7() Platform {
	return Platform{
		Name:           "fpga-kintex-7",
		AreaMM2:        132,
		DynamicPowerW:  8,
		MemBandwidth:   12.8e9,
		Efficiency:     0.7,
		BatchOverheadS: 1e-6,
	}
}

// All returns the three baselines.
func All() []Platform {
	return []Platform{XeonE5(), TitanX(), Kintex7()}
}

// LinearQPS returns modeled queries/second for exact linear search
// over n vectors of dim float32 dimensions.
func (p Platform) LinearQPS(n, dim int) float64 {
	bytes := float64(n) * float64(dim) * 4
	if bytes <= 0 {
		return 0
	}
	t := bytes/(p.MemBandwidth*p.Efficiency) + p.BatchOverheadS
	return 1 / t
}

// LinearQPSBytes is LinearQPS for an arbitrary per-query byte volume
// (e.g. binarized Hamming databases).
func (p Platform) LinearQPSBytes(bytesPerQuery float64) float64 {
	if bytesPerQuery <= 0 {
		return 0
	}
	t := bytesPerQuery/(p.MemBandwidth*p.Efficiency) + p.BatchOverheadS
	return 1 / t
}

// AreaNormQPS returns queries/second/mm^2, Fig. 6a's metric.
func (p Platform) AreaNormQPS(n, dim int) float64 {
	return p.LinearQPS(n, dim) / p.AreaMM2
}

// QueriesPerJoule returns queries/joule of dynamic energy, Fig. 6b's
// metric.
func (p Platform) QueriesPerJoule(n, dim int) float64 {
	return p.LinearQPS(n, dim) / p.DynamicPowerW
}

// ApproxQPS models an indexed (approximate) query on the platform: the
// traversal is latency-bound scalar work, the bucket scans are
// bandwidth-bound. scannedBytes is the data volume actually touched
// per query; traversalOps is the number of scalar traversal steps.
func (p Platform) ApproxQPS(scannedBytes float64, traversalOps int) float64 {
	const opTime = 2e-9 // ~a few cycles per pointer-chasing step
	t := scannedBytes/(p.MemBandwidth*p.Efficiency) +
		float64(traversalOps)*opTime + p.BatchOverheadS
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// String implements fmt.Stringer.
func (p Platform) String() string {
	return fmt.Sprintf("%s (%.0f mm^2, %.0f W, %.0f GB/s)",
		p.Name, p.AreaMM2, p.DynamicPowerW, p.MemBandwidth/1e9)
}
