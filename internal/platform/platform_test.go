package platform

import (
	"strings"
	"testing"
)

func TestEnvelopes(t *testing.T) {
	for _, p := range All() {
		if p.AreaMM2 <= 0 || p.DynamicPowerW <= 0 || p.MemBandwidth <= 0 {
			t.Errorf("%s: non-positive envelope %+v", p.Name, p)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1 {
			t.Errorf("%s: efficiency %v out of (0,1]", p.Name, p.Efficiency)
		}
	}
}

func TestLinearQPSBandwidthBound(t *testing.T) {
	cpu := XeonE5()
	// 1M x 960-d floats = 3.84 GB per scan.
	qps := cpu.LinearQPS(1_000_000, 960)
	roofline := cpu.MemBandwidth * cpu.Efficiency / (1_000_000 * 960 * 4)
	if qps > roofline {
		t.Fatalf("qps %v above roofline %v", qps, roofline)
	}
	if qps < 0.9*roofline {
		t.Fatalf("qps %v far below roofline %v for a huge scan", qps, roofline)
	}
}

func TestGPUFasterThanCPURaw(t *testing.T) {
	n, d := 1_000_000, 960
	if TitanX().LinearQPS(n, d) <= XeonE5().LinearQPS(n, d) {
		t.Fatal("GPU should beat CPU in raw linear-scan throughput")
	}
}

func TestFPGAEnergyCompetitive(t *testing.T) {
	// The FPGA draws little power; it should beat the CPU on
	// queries/joule even when slower in raw throughput.
	n, d := 1_000_000, 960
	if Kintex7().QueriesPerJoule(n, d) <= XeonE5().QueriesPerJoule(n, d) {
		t.Fatal("FPGA should beat CPU on energy efficiency")
	}
}

func TestQPSScalesInverselyWithData(t *testing.T) {
	cpu := XeonE5()
	small := cpu.LinearQPS(100_000, 100)
	big := cpu.LinearQPS(1_000_000, 100)
	if big >= small {
		t.Fatal("more data should mean fewer queries/s")
	}
	ratio := small / big
	if ratio < 8 || ratio > 10.5 {
		t.Fatalf("scan-time scaling ratio = %v, want ~10", ratio)
	}
}

func TestLinearQPSBytes(t *testing.T) {
	cpu := XeonE5()
	// Binarized GloVe: 1.2M x 100 bits ~ 1.2M x 16 bytes.
	bin := cpu.LinearQPSBytes(1.2e6 * 16)
	flt := cpu.LinearQPS(1_200_000, 100)
	if bin <= flt {
		t.Fatal("binarized scan should be faster than float scan")
	}
	if cpu.LinearQPSBytes(0) != 0 {
		t.Fatal("zero bytes should yield zero qps")
	}
}

func TestAreaNormAndEnergyMetrics(t *testing.T) {
	p := XeonE5()
	n, d := 100_000, 128
	if p.AreaNormQPS(n, d) != p.LinearQPS(n, d)/p.AreaMM2 {
		t.Fatal("AreaNormQPS inconsistent")
	}
	if p.QueriesPerJoule(n, d) != p.LinearQPS(n, d)/p.DynamicPowerW {
		t.Fatal("QueriesPerJoule inconsistent")
	}
}

func TestApproxQPS(t *testing.T) {
	cpu := XeonE5()
	fast := cpu.ApproxQPS(1e6, 100)   // scan 1 MB
	slow := cpu.ApproxQPS(100e6, 100) // scan 100 MB
	if fast <= slow {
		t.Fatal("ApproxQPS not monotone in scanned volume")
	}
	// Indexed search must beat the full linear scan it prunes.
	linear := cpu.LinearQPS(1_000_000, 960)
	if cpu.ApproxQPS(38.4e6, 500) <= linear { // scanning 1% of the data
		t.Fatal("1% scan should beat full scan")
	}
}

func TestString(t *testing.T) {
	if s := TitanX().String(); !strings.Contains(s, "gpu-titan-x") {
		t.Fatalf("String = %q", s)
	}
}
