// Package cluster is the sharded scatter-gather layer over SSAM
// regions: one logical dataset partitioned across N ssam.Region
// shards — each with its own simulated device module, modeling the
// paper's composition of multiple cubes (Section IV, Fig. 4) — with
// every query fanned out to all shards concurrently and the per-shard
// top-k lists reduced to a global top-k on the host (Section III-D).
//
// Beyond the paper's fan-out/merge skeleton, the cluster carries the
// robustness semantics a serving fleet needs:
//
//   - a per-shard deadline, so one wedged shard cannot stall a query;
//   - optional hedged re-issue: when a shard has not answered within
//     the hedge delay, the query is issued to it a second time and the
//     first answer wins (modeling re-issue to a replica of the shard —
//     on the simulator both attempts share the module, so hedging pays
//     off when the slowness is in front of the device);
//   - partial-result degradation: with AllowPartial set, a query whose
//     shards partly fail still returns the merged results of the
//     survivors, flagged Degraded with the failed shard list, instead
//     of failing outright.
//
// Shard results carry shard-local row ids; the cluster remaps them to
// global dataset ids, so exact-mode cluster searches are
// indistinguishable from a single region over the whole dataset.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ssam"
	"ssam/internal/obs"
	"ssam/internal/topk"
)

// ErrShardTimeout marks a shard that missed its per-shard deadline.
var ErrShardTimeout = errors.New("cluster: shard deadline exceeded")

// Partition selects how dataset rows map to shards.
type Partition int

const (
	// RoundRobin assigns row i to shard i mod N — the default, and the
	// layout the paper uses to stripe a dataset across vaults and cubes
	// (every shard sees a representative sample of the data).
	RoundRobin Partition = iota
	// HashRows assigns each row by a hash of its bytes, the layout a
	// content-addressed ingest pipeline would produce.
	HashRows
)

// String returns the partition name.
func (p Partition) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case HashRows:
		return "hash"
	}
	return "unknown"
}

// ParsePartition parses a partition name as produced by String.
func ParsePartition(s string) (Partition, error) {
	switch s {
	case "", "roundrobin":
		return RoundRobin, nil
	case "hash":
		return HashRows, nil
	}
	return 0, fmt.Errorf("cluster: unknown partition %q", s)
}

// Options configures a Cluster.
type Options struct {
	// Shards is the number of modules the dataset is partitioned
	// across. Must be positive.
	Shards int
	// Partition selects the row-to-shard mapping (default RoundRobin).
	Partition Partition
	// ShardDeadline bounds each shard's time to answer one fan-out;
	// a shard that misses it counts as failed. Zero disables it.
	ShardDeadline time.Duration
	// HedgeAfter, when positive, re-issues a query to a shard that has
	// not answered within this delay; the first answer wins.
	HedgeAfter time.Duration
	// AllowPartial degrades instead of failing: queries with failed
	// shards return the survivors' merged results with Degraded set.
	// Without it, any shard failure fails the query. A query whose
	// shards all fail is an error either way.
	AllowPartial bool
}

// Response is one scatter-gather answer.
type Response struct {
	// Results is the global top-k, ids in dataset (not shard) space.
	Results []ssam.Result
	// Degraded reports that FailedShards were excluded from the merge
	// (only possible with Options.AllowPartial).
	Degraded bool
	// FailedShards lists the shard indexes that errored or timed out,
	// ascending.
	FailedShards []int
	// Hedges counts hedged re-issues this query triggered.
	Hedges int
}

// BatchResponse is Response for a query batch: degradation is
// batch-scoped because a failed shard is missing from every query's
// merge.
type BatchResponse struct {
	Results      [][]ssam.Result
	Degraded     bool
	FailedShards []int
	Hedges       int
}

// Stats aggregates the simulated device execution of the last search
// across shards: shards run in parallel, so the cluster's latency is
// the slowest shard's, while instruction, traffic, and PU counts sum —
// the one struct from which the paper's throughput-vs-modules scaling
// story is reproduced.
type Stats struct {
	// PerShard holds each shard's DeviceStats (zero for host shards
	// and for shards excluded from a degraded query).
	PerShard []ssam.DeviceStats
	// Combined has Cycles/Seconds as the max over shards and the
	// remaining fields summed.
	Combined ssam.DeviceStats
}

// Throughput returns queries/second implied by the combined latency.
func (s Stats) Throughput() float64 {
	if s.Combined.Seconds <= 0 {
		return 0
	}
	return 1 / s.Combined.Seconds
}

// ShardStat is one shard's serving-side view for /statsz.
type ShardStat struct {
	Shard    int
	Len      int    // rows resident on the shard
	InFlight int    // fan-outs currently executing
	Queries  uint64 // fan-outs served (including failed)
	Failures uint64 // errored fan-outs (timeouts included)
	Timeouts uint64 // fan-outs that missed the shard deadline
	Hedges   uint64 // hedged re-issues launched
	// AvgLatency is the mean fan-out latency over the shard's lifetime.
	AvgLatency time.Duration
}

// shard is one partition: a private region plus the local-to-global id
// map and serving counters.
type shard struct {
	region *ssam.Region
	ids    []int // global dataset id per shard-local row

	inFlight atomic.Int64
	queries  atomic.Uint64
	failures atomic.Uint64
	timeouts atomic.Uint64
	hedges   atomic.Uint64
	latNanos atomic.Int64 // cumulative fan-out latency
}

func (s *shard) empty() bool { return len(s.ids) == 0 }

// Cluster is a set of SSAM region shards behind one search interface.
// Like Region, it is not safe for concurrent mutation
// (LoadFloat32/BuildIndex/Free), but Search and SearchBatch are safe
// from many goroutines once the index is built.
type Cluster struct {
	dims   int
	cfg    ssam.Config
	opts   Options
	shards []*shard
	loaded bool
	built  bool
	freed  bool

	// fault, when non-nil, runs before every shard search attempt with
	// the shard index and attempt number (0 primary, 1 hedge) — the
	// fault-injection hook: return an error to fail the attempt, block
	// to simulate a straggler.
	fault atomic.Pointer[func(shard, attempt int) error]

	// attempts tracks every shard search attempt, including abandoned
	// hedges and timed-out stragglers, so Free can drain them before
	// tearing the shard regions down.
	attempts sync.WaitGroup

	mu        sync.Mutex
	lastStats Stats
}

// New allocates a cluster of opts.Shards regions, each configured with
// cfg (so Device execution gives every shard its own simulated
// module). Hamming-metric configurations are not supported — the
// cluster partitions float datasets.
func New(dims int, cfg ssam.Config, opts Options) (*Cluster, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("cluster: shards must be positive, got %d", opts.Shards)
	}
	if cfg.Metric == ssam.Hamming {
		return nil, errors.New("cluster: Hamming regions cannot be sharded (float datasets only)")
	}
	if opts.Partition != RoundRobin && opts.Partition != HashRows {
		return nil, fmt.Errorf("cluster: unknown partition %d", opts.Partition)
	}
	// Validate cfg/dims once up front with a probe region, so a bad
	// config fails at New rather than at first Load.
	probe, err := ssam.New(dims, cfg)
	if err != nil {
		return nil, err
	}
	probe.Free()
	c := &Cluster{dims: dims, cfg: cfg, opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{}
	}
	return c, nil
}

// Dims returns the cluster's vector dimensionality.
func (c *Cluster) Dims() int { return c.dims }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Options returns the cluster's configuration.
func (c *Cluster) Options() Options { return c.opts }

// Len returns the number of loaded vectors across all shards.
func (c *Cluster) Len() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.ids)
	}
	return n
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook, called before every shard search attempt with the shard index
// and the attempt number (0 primary, 1 hedge). Returning an error
// fails that attempt; blocking simulates a straggler shard.
func (c *Cluster) SetFaultHook(fn func(shard, attempt int) error) {
	if fn == nil {
		c.fault.Store(nil)
		return
	}
	c.fault.Store(&fn)
}

// LoadFloat32 partitions a flattened row-major dataset across the
// shards (nmemcpy, N ways). Reloading replaces the whole dataset.
func (c *Cluster) LoadFloat32(data []float32) error {
	if c.freed {
		return ssam.ErrFreed
	}
	if len(data) == 0 || len(data)%c.dims != 0 {
		return fmt.Errorf("cluster: data length %d not a positive multiple of dims %d", len(data), c.dims)
	}
	rows := len(data) / c.dims
	parts := make([][]float32, len(c.shards))
	ids := make([][]int, len(c.shards))
	for i := 0; i < rows; i++ {
		row := data[i*c.dims : (i+1)*c.dims]
		si := c.shardOf(i, row)
		parts[si] = append(parts[si], row...)
		ids[si] = append(ids[si], i)
	}
	for si, s := range c.shards {
		if s.region != nil {
			s.region.Free()
			s.region = nil
		}
		s.ids = ids[si]
		if len(s.ids) == 0 {
			continue // empty shard: skipped by build and search
		}
		region, err := ssam.New(c.dims, c.cfg)
		if err != nil {
			return err
		}
		if err := region.LoadFloat32(parts[si]); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", si, err)
		}
		s.region = region
	}
	c.loaded, c.built = true, false
	return nil
}

// shardOf maps global row i (with its data) to a shard index.
func (c *Cluster) shardOf(i int, row []float32) int {
	if c.opts.Partition == RoundRobin {
		return i % len(c.shards)
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range row {
		bits := math.Float32bits(v)
		buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(buf[:])
	}
	return int(h.Sum64() % uint64(len(c.shards)))
}

// BuildIndex builds every shard's index concurrently (nbuild_index, N
// ways — on device shards each module lays out and assembles its own
// kernels).
func (c *Cluster) BuildIndex() error {
	if c.freed {
		return ssam.ErrFreed
	}
	if !c.loaded {
		return errors.New("cluster: BuildIndex before load")
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for si, s := range c.shards {
		if s.empty() {
			continue
		}
		wg.Add(1)
		go func(si int, s *shard) {
			defer wg.Done()
			if err := s.region.BuildIndex(); err != nil {
				errs[si] = fmt.Errorf("cluster: shard %d: %w", si, err)
			}
		}(si, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.built = true
	return nil
}

// SetChecks adjusts every shard's accuracy/throughput knob without
// rebuilding (see Region.SetChecks).
func (c *Cluster) SetChecks(n int) error {
	if c.freed {
		return ssam.ErrFreed
	}
	for si, s := range c.shards {
		if s.empty() {
			continue
		}
		if err := s.region.SetChecks(n); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", si, err)
		}
	}
	return nil
}

// Search fans one query out to every shard and merges the per-shard
// top-k into the global top-k (ascending distance, ties by ascending
// id). See Options for the deadline/hedging/partial-result semantics.
func (c *Cluster) Search(q []float32, k int) (Response, error) {
	return c.SearchTraced(q, k, nil)
}

// SearchTraced is Search for a request carrying a sampled trace: sp
// (nil for untraced queries) gains a "fanout" child holding one
// "shard" span per attempt and a "merge" child covering the top-k
// reduction.
func (c *Cluster) SearchTraced(q []float32, k int, sp *obs.Span) (Response, error) {
	if err := c.checkQuery(len(q), k); err != nil {
		return Response{}, err
	}
	outs, err := scatter(c, sp, func(s *shard, attempt int, asp *obs.Span) ([]ssam.Result, ssam.DeviceStats, error) {
		res, st, err := s.region.SearchStatsSpan(q, k, asp)
		if err != nil {
			return nil, st, err
		}
		return s.remap(res), st, nil
	})
	if err != nil {
		return Response{}, err
	}
	lists := make([][]ssam.Result, 0, len(outs.vals))
	for _, l := range outs.vals {
		lists = append(lists, l)
	}
	c.commitStats(outs.stats)
	msp := sp.Start("merge", obs.Tag{Key: "lists", Value: len(lists)})
	merged := topk.MergeSorted(k, lists...)
	msp.End()
	return Response{
		Results:      merged,
		Degraded:     len(outs.failed) > 0,
		FailedShards: outs.failed,
		Hedges:       outs.hedges,
	}, nil
}

// SearchBatch fans a whole batch out to every shard (one
// Region.SearchBatch per shard) and merges per query. A shard that
// fails or misses its deadline is missing from every query of the
// batch, so degradation is batch-scoped.
func (c *Cluster) SearchBatch(qs [][]float32, k int) (BatchResponse, error) {
	return c.SearchBatchTraced(qs, k, nil)
}

// SearchBatchTraced is SearchBatch with the same span threading as
// SearchTraced; the "merge" span covers every query's reduction.
func (c *Cluster) SearchBatchTraced(qs [][]float32, k int, sp *obs.Span) (BatchResponse, error) {
	if c.freed {
		return BatchResponse{}, ssam.ErrFreed
	}
	if len(qs) == 0 {
		return BatchResponse{}, errors.New("cluster: empty batch")
	}
	for _, q := range qs {
		if err := c.checkQuery(len(q), k); err != nil {
			return BatchResponse{}, err
		}
	}
	outs, err := scatter(c, sp, func(s *shard, attempt int, asp *obs.Span) ([][]ssam.Result, ssam.DeviceStats, error) {
		lists, err := s.region.SearchBatchSpan(qs, k, asp)
		st := s.region.LastStats()
		if err != nil {
			return nil, st, err
		}
		for _, l := range lists {
			s.remap(l)
		}
		return lists, st, nil
	})
	if err != nil {
		return BatchResponse{}, err
	}
	msp := sp.Start("merge", obs.Tag{Key: "queries", Value: len(qs)})
	merged := make([][]ssam.Result, len(qs))
	perQuery := make([][]ssam.Result, 0, len(outs.vals))
	for qi := range qs {
		perQuery = perQuery[:0]
		for _, lists := range outs.vals {
			if lists != nil {
				perQuery = append(perQuery, lists[qi])
			}
		}
		merged[qi] = topk.MergeSorted(k, perQuery...)
	}
	msp.End()
	c.commitStats(outs.stats)
	return BatchResponse{
		Results:      merged,
		Degraded:     len(outs.failed) > 0,
		FailedShards: outs.failed,
		Hedges:       outs.hedges,
	}, nil
}

func (c *Cluster) checkQuery(qdims, k int) error {
	if c.freed {
		return ssam.ErrFreed
	}
	if !c.built {
		return errors.New("cluster: Search before BuildIndex")
	}
	if qdims != c.dims {
		return fmt.Errorf("cluster: query dim %d, want %d", qdims, c.dims)
	}
	if k <= 0 {
		return errors.New("cluster: k must be positive")
	}
	return nil
}

// remap rewrites shard-local result ids to global dataset ids, in
// place (shard search results are freshly allocated).
func (s *shard) remap(res []ssam.Result) []ssam.Result {
	for i := range res {
		res[i].ID = s.ids[res[i].ID]
	}
	return res
}

// gather is the outcome of one scatter across all shards.
type gather[T any] struct {
	vals   []T // per shard; zero value for empty or failed shards
	stats  []ssam.DeviceStats
	failed []int
	hedges int
}

// scatter runs op on every non-empty shard concurrently, applying the
// deadline/hedge/partial-result policy, and collects the outcomes. It
// returns an error when failures cannot be degraded away: any failure
// without AllowPartial, or all shards failing. When sp is non-nil the
// fan-out is recorded as a "fanout" child span holding one "shard"
// span per attempt.
func scatter[T any](c *Cluster, sp *obs.Span, op func(s *shard, attempt int, asp *obs.Span) (T, ssam.DeviceStats, error)) (gather[T], error) {
	g := gather[T]{vals: make([]T, len(c.shards)), stats: make([]ssam.DeviceStats, len(c.shards))}
	outs := make([]shardOutcome[T], len(c.shards))
	var wg sync.WaitGroup
	active := 0
	fsp := sp.Start("fanout")
	for si, s := range c.shards {
		if s.empty() {
			continue
		}
		active++
		wg.Add(1)
		go func(si int, s *shard) {
			defer wg.Done()
			outs[si] = runShard(c, si, s, fsp, op)
		}(si, s)
	}
	if active == 0 {
		fsp.End()
		return g, errors.New("cluster: no loaded shards")
	}
	wg.Wait()
	fsp.End()

	var firstErr error
	for si, s := range c.shards {
		if s.empty() {
			continue
		}
		out := &outs[si]
		g.hedges += out.hedges
		if out.err != nil {
			g.failed = append(g.failed, si)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %d: %w", si, out.err)
			}
			continue
		}
		g.vals[si] = out.val
		g.stats[si] = out.stats
	}
	sort.Ints(g.failed)
	if firstErr != nil && (!c.opts.AllowPartial || len(g.failed) == active) {
		return g, firstErr
	}
	return g, nil
}

// shardOutcome is one shard's fan-out result.
type shardOutcome[T any] struct {
	val    T
	stats  ssam.DeviceStats
	err    error
	hedges int
}

// runShard executes op against one shard with the hedging and deadline
// policy: the primary attempt is launched immediately; if it has not
// answered within HedgeAfter a single hedge attempt is launched and
// the first success wins (an error only surfaces once no attempt is
// still outstanding); ShardDeadline bounds the whole fan-out.
func runShard[T any](c *Cluster, si int, s *shard, fsp *obs.Span, op func(s *shard, attempt int, asp *obs.Span) (T, ssam.DeviceStats, error)) shardOutcome[T] {
	start := time.Now()
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		s.queries.Add(1)
		s.latNanos.Add(int64(time.Since(start)))
	}()

	type attemptOut struct {
		val   T
		stats ssam.DeviceStats
		err   error
	}
	ch := make(chan attemptOut, 2) // buffered: abandoned attempts never leak
	launch := func(attempt int) {
		c.attempts.Add(1)
		// The attempt span is created here (before the goroutine) so its
		// start covers goroutine scheduling; it ends when the attempt
		// returns, even if the fan-out has already abandoned it — a
		// straggler's true duration is exactly what a trace should show.
		asp := fsp.Start("shard", obs.Tag{Key: "shard", Value: si}, obs.Tag{Key: "attempt", Value: attempt})
		go func() {
			defer c.attempts.Done()
			var out attemptOut
			if hook := c.fault.Load(); hook != nil {
				out.err = (*hook)(si, attempt)
			}
			if out.err == nil {
				out.val, out.stats, out.err = op(s, attempt, asp)
			}
			if out.err != nil {
				asp.SetTag("error", out.err.Error())
			}
			asp.End()
			ch <- out
		}()
	}
	launch(0)
	outstanding := 1

	var hedgeC, deadC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		ht := time.NewTimer(c.opts.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	if c.opts.ShardDeadline > 0 {
		dt := time.NewTimer(c.opts.ShardDeadline)
		defer dt.Stop()
		deadC = dt.C
	}

	var out shardOutcome[T]
	for {
		select {
		case a := <-ch:
			outstanding--
			if a.err == nil {
				out.val, out.stats, out.err = a.val, a.stats, nil
				return out
			}
			if outstanding == 0 {
				out.err = a.err
				s.failures.Add(1)
				return out
			}
			// A hedge is still in flight; give it the chance to win.
		case <-hedgeC:
			hedgeC = nil
			out.hedges++
			s.hedges.Add(1)
			launch(1)
			outstanding++
		case <-deadC:
			out.err = ErrShardTimeout
			s.failures.Add(1)
			s.timeouts.Add(1)
			return out
		}
	}
}

// commitStats aggregates per-shard device stats into LastStats.
func (c *Cluster) commitStats(perShard []ssam.DeviceStats) {
	st := Stats{PerShard: perShard}
	for _, s := range perShard {
		if s.Cycles > st.Combined.Cycles {
			st.Combined.Cycles = s.Cycles
		}
		if s.Seconds > st.Combined.Seconds {
			st.Combined.Seconds = s.Seconds
		}
		st.Combined.Instructions += s.Instructions
		st.Combined.VectorInstructions += s.VectorInstructions
		st.Combined.DRAMBytesRead += s.DRAMBytesRead
		st.Combined.ProcessingUnits += s.ProcessingUnits
	}
	c.mu.Lock()
	c.lastStats = st
	c.mu.Unlock()
}

// LastStats returns the aggregated device stats of the last Search or
// SearchBatch (all zero for Host execution).
func (c *Cluster) LastStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.lastStats
	st.PerShard = append([]ssam.DeviceStats(nil), st.PerShard...)
	return st
}

// ShardStat returns one shard's serving-side counters — the
// allocation-free form metric callbacks scrape.
func (c *Cluster) ShardStat(si int) ShardStat {
	s := c.shards[si]
	st := ShardStat{
		Shard:    si,
		Len:      len(s.ids),
		InFlight: int(s.inFlight.Load()),
		Queries:  s.queries.Load(),
		Failures: s.failures.Load(),
		Timeouts: s.timeouts.Load(),
		Hedges:   s.hedges.Load(),
	}
	if st.Queries > 0 {
		st.AvgLatency = time.Duration(uint64(s.latNanos.Load()) / st.Queries)
	}
	return st
}

// ShardStats returns each shard's serving-side counters.
func (c *Cluster) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for si := range c.shards {
		out[si] = c.ShardStat(si)
	}
	return out
}

// Free releases every shard. It first waits for outstanding shard
// attempts — abandoned hedges and timed-out stragglers included — to
// return, so a wedged fault hook must be released before Free can
// complete. Further operations return ssam.ErrFreed.
func (c *Cluster) Free() {
	c.freed = true
	c.attempts.Wait()
	for _, s := range c.shards {
		if s.region != nil {
			s.region.Free()
			s.region = nil
		}
		s.ids = nil
	}
}
