package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ssam"
	"ssam/internal/topk"
)

func randData(n, dims int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	return data
}

func buildCluster(t *testing.T, data []float32, dims int, cfg ssam.Config, opts Options) *Cluster {
	t.Helper()
	c, err := New(dims, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadFloat32(data); err != nil {
		t.Fatal(err)
	}
	if err := c.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return c
}

func buildRegion(t *testing.T, data []float32, dims int, cfg ssam.Config) *ssam.Region {
	t.Helper()
	r, err := ssam.New(dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadFloat32(data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestClusterRegionEquivalence is the exact-mode equivalence property:
// a Linear/Host cluster over N shards must answer every query with
// exactly the ids and distances of one unsharded region over the same
// dataset — for several metrics, shard counts, partitions, and k
// values including k larger than a shard and larger than the dataset.
func TestClusterRegionEquivalence(t *testing.T) {
	const dims, n = 12, 157 // odd n so round-robin shards are uneven
	data := randData(n, dims, 3)
	queries := make([][]float32, 20)
	for i := range queries {
		queries[i] = randData(1, dims, int64(100+i))
	}

	for _, metric := range []ssam.Metric{ssam.Euclidean, ssam.Manhattan, ssam.Cosine} {
		cfg := ssam.Config{Metric: metric}
		region := buildRegion(t, data, dims, cfg)
		for _, part := range []Partition{RoundRobin, HashRows} {
			for _, shards := range []int{1, 2, 4, 7} {
				cl := buildCluster(t, data, dims, cfg, Options{Shards: shards, Partition: part})
				if cl.Len() != n {
					t.Fatalf("%v/%v x%d: cluster lost rows: Len=%d want %d", metric, part, shards, cl.Len(), n)
				}
				for _, k := range []int{1, 5, 40, n + 10} { // 40 > 157/7 ≈ 23: k exceeds shard size
					for qi, q := range queries {
						want, err := region.Search(q, k)
						if err != nil {
							t.Fatal(err)
						}
						resp, err := cl.Search(q, k)
						if err != nil {
							t.Fatalf("%v/%v x%d k=%d: %v", metric, part, shards, k, err)
						}
						if resp.Degraded || len(resp.FailedShards) > 0 {
							t.Fatalf("%v/%v x%d k=%d: unexpected degradation %+v", metric, part, shards, k, resp)
						}
						assertSameResults(t, fmt.Sprintf("%v/%v x%d k=%d q%d", metric, part, shards, k, qi), resp.Results, want)
					}
				}
				cl.Free()
			}
		}
		region.Free()
	}
}

// TestClusterEquivalenceEmptyShards covers more shards than rows:
// the surplus shards hold nothing and must not affect results.
func TestClusterEquivalenceEmptyShards(t *testing.T) {
	const dims, n = 6, 5
	data := randData(n, dims, 9)
	cfg := ssam.Config{}
	region := buildRegion(t, data, dims, cfg)
	defer region.Free()
	cl := buildCluster(t, data, dims, cfg, Options{Shards: 7})
	defer cl.Free()

	q := randData(1, dims, 77)
	for _, k := range []int{1, 3, n, n + 4} {
		want, err := region.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := cl.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("empty-shards k=%d", k), resp.Results, want)
	}
}

func assertSameResults(t *testing.T, label string, got, want []ssam.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: result %d = {%d %v}, want {%d %v}",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestClusterBatchEquivalence: the batch path must agree with the
// single-query path.
func TestClusterBatchEquivalence(t *testing.T) {
	const dims, n, k = 8, 120, 7
	data := randData(n, dims, 5)
	cl := buildCluster(t, data, dims, ssam.Config{}, Options{Shards: 4})
	defer cl.Free()

	qs := make([][]float32, 9)
	for i := range qs {
		qs[i] = randData(1, dims, int64(500+i))
	}
	batch, err := cl.SearchBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Degraded {
		t.Fatalf("unexpected degradation: %+v", batch)
	}
	for i, q := range qs {
		single, err := cl.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("batch query %d", i), batch.Results[i], single.Results)
	}
}

// TestClusterPartialDegradation kills one shard via the fault hook:
// with AllowPartial the query degrades to the survivors' merge; the
// merged results must equal a region over the surviving rows.
func TestClusterPartialDegradation(t *testing.T) {
	const dims, n, shards, k = 10, 90, 3, 8
	data := randData(n, dims, 11)
	cl := buildCluster(t, data, dims, ssam.Config{}, Options{Shards: shards, AllowPartial: true})
	defer cl.Free()

	const dead = 1
	cl.SetFaultHook(func(shard, attempt int) error {
		if shard == dead {
			return errors.New("injected shard crash")
		}
		return nil
	})

	// Survivors under round-robin: rows with i % shards != dead.
	var surviving []float32
	var survivingIDs []int
	for i := 0; i < n; i++ {
		if i%shards != dead {
			surviving = append(surviving, data[i*dims:(i+1)*dims]...)
			survivingIDs = append(survivingIDs, i)
		}
	}
	ref := buildRegion(t, surviving, dims, ssam.Config{})
	defer ref.Free()

	q := randData(1, dims, 321)
	resp, err := cl.Search(q, k)
	if err != nil {
		t.Fatalf("partial-mode search failed outright: %v", err)
	}
	if !resp.Degraded {
		t.Fatalf("response not flagged Degraded: %+v", resp)
	}
	if len(resp.FailedShards) != 1 || resp.FailedShards[0] != dead {
		t.Fatalf("FailedShards = %v, want [%d]", resp.FailedShards, dead)
	}
	want, err := ref.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i].ID = survivingIDs[want[i].ID]
	}
	assertSameResults(t, "degraded merge", resp.Results, want)

	// Without AllowPartial the same failure must fail the query.
	strict := buildCluster(t, data, dims, ssam.Config{}, Options{Shards: shards})
	defer strict.Free()
	strict.SetFaultHook(func(shard, attempt int) error {
		if shard == dead {
			return errors.New("injected shard crash")
		}
		return nil
	})
	if _, err := strict.Search(q, k); err == nil {
		t.Fatal("strict cluster returned success with a dead shard")
	}

	// All shards dead is an error even in partial mode.
	cl.SetFaultHook(func(int, int) error { return errors.New("total outage") })
	if _, err := cl.Search(q, k); err == nil {
		t.Fatal("partial cluster returned success with every shard dead")
	}
}

// TestClusterShardDeadline wedges one shard past the deadline: partial
// mode degrades with the shard counted as a timeout.
func TestClusterShardDeadline(t *testing.T) {
	const dims, n, shards, k = 6, 60, 3, 5
	data := randData(n, dims, 13)
	cl := buildCluster(t, data, dims, ssam.Config{}, Options{
		Shards: shards, AllowPartial: true, ShardDeadline: 20 * time.Millisecond,
	})
	defer cl.Free()

	release := make(chan struct{})
	defer close(release)
	cl.SetFaultHook(func(shard, attempt int) error {
		if shard == 2 {
			<-release
		}
		return nil
	})

	q := randData(1, dims, 654)
	start := time.Now()
	resp, err := cl.Search(q, k)
	if err != nil {
		t.Fatalf("deadline search: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the query: took %v", elapsed)
	}
	if !resp.Degraded || len(resp.FailedShards) != 1 || resp.FailedShards[0] != 2 {
		t.Fatalf("expected shard 2 timed out, got %+v", resp)
	}
	if len(resp.Results) == 0 {
		t.Fatal("degraded response carries no results")
	}
	st := cl.ShardStats()[2]
	if st.Timeouts == 0 || st.Failures == 0 {
		t.Fatalf("shard 2 stats missing the timeout: %+v", st)
	}
}

// TestClusterHedging makes shard 0's primary attempt hang; the hedge
// re-issue must answer the query without degradation.
func TestClusterHedging(t *testing.T) {
	const dims, n, shards, k = 6, 60, 2, 4
	data := randData(n, dims, 17)
	cl := buildCluster(t, data, dims, ssam.Config{}, Options{
		Shards: shards, HedgeAfter: 5 * time.Millisecond, ShardDeadline: 10 * time.Second,
	})
	defer cl.Free()

	release := make(chan struct{})
	defer close(release)
	cl.SetFaultHook(func(shard, attempt int) error {
		if shard == 0 && attempt == 0 {
			<-release // primary straggles until test end
		}
		return nil
	})

	q := randData(1, dims, 987)
	resp, err := cl.Search(q, k)
	if err != nil {
		t.Fatalf("hedged search: %v", err)
	}
	if resp.Degraded {
		t.Fatalf("hedged search degraded: %+v", resp)
	}
	if resp.Hedges == 0 {
		t.Fatal("no hedge was issued for the straggling shard")
	}
	if cl.ShardStats()[0].Hedges == 0 {
		t.Fatal("shard 0 hedge counter not incremented")
	}

	want := buildRegion(t, data, dims, ssam.Config{})
	defer want.Free()
	ref, err := want.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "hedged", resp.Results, ref)
}

// TestClusterHedgeOutlivesFailedPrimary: when the primary attempt
// errors while a hedge is in flight, the hedge's success must win.
func TestClusterHedgeOutlivesFailedPrimary(t *testing.T) {
	const dims, n, k = 6, 40, 3
	data := randData(n, dims, 23)
	cl := buildCluster(t, data, dims, ssam.Config{}, Options{
		Shards: 2, HedgeAfter: 2 * time.Millisecond,
	})
	defer cl.Free()

	hedged := make(chan struct{})
	cl.SetFaultHook(func(shard, attempt int) error {
		if shard != 0 {
			return nil
		}
		if attempt == 0 {
			<-hedged // hold the primary until the hedge has launched
			return errors.New("primary died")
		}
		close(hedged)
		return nil
	})

	resp, err := cl.Search(randData(1, dims, 55), k)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if resp.Degraded || len(resp.Results) == 0 {
		t.Fatalf("hedge success did not rescue the shard: %+v", resp)
	}
}

// TestClusterDeviceStatsAggregation checks the Fig. 9 scaling story:
// device shards report per-shard stats, combined latency is the
// slowest shard, and work sums across modules.
func TestClusterDeviceStatsAggregation(t *testing.T) {
	const dims, n, shards, k = 8, 128, 4, 3
	data := randData(n, dims, 29)
	cfg := ssam.Config{Execution: ssam.Device}
	cl := buildCluster(t, data, dims, cfg, Options{Shards: shards})
	defer cl.Free()

	q := randData(1, dims, 61)
	if _, err := cl.Search(q, k); err != nil {
		t.Fatal(err)
	}
	st := cl.LastStats()
	if len(st.PerShard) != shards {
		t.Fatalf("PerShard has %d entries, want %d", len(st.PerShard), shards)
	}
	var maxCycles, sumInsts uint64
	var sumPUs int
	for si, s := range st.PerShard {
		if s.Cycles == 0 || s.Instructions == 0 {
			t.Fatalf("shard %d reported no device execution: %+v", si, s)
		}
		if s.Cycles > maxCycles {
			maxCycles = s.Cycles
		}
		sumInsts += s.Instructions
		sumPUs += s.ProcessingUnits
	}
	if st.Combined.Cycles != maxCycles {
		t.Fatalf("Combined.Cycles = %d, want max shard %d", st.Combined.Cycles, maxCycles)
	}
	if st.Combined.Instructions != sumInsts {
		t.Fatalf("Combined.Instructions = %d, want sum %d", st.Combined.Instructions, sumInsts)
	}
	if st.Combined.ProcessingUnits != sumPUs {
		t.Fatalf("Combined.ProcessingUnits = %d, want sum %d", st.Combined.ProcessingUnits, sumPUs)
	}
	if st.Throughput() <= 0 {
		t.Fatal("Throughput not positive for a device cluster")
	}

	// Equivalence holds on device shards too (same fixed-point
	// pipeline per shard): compare against a single device region.
	region := buildRegion(t, data, dims, cfg)
	defer region.Free()
	want, err := region.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "device equivalence", resp.Results, want)
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(4, ssam.Config{}, Options{Shards: 0}); err == nil {
		t.Fatal("New accepted zero shards")
	}
	if _, err := New(4, ssam.Config{Metric: ssam.Hamming, Mode: ssam.Linear}, Options{Shards: 2}); err == nil {
		t.Fatal("New accepted a Hamming config")
	}
	if _, err := New(4, ssam.Config{Metric: ssam.Metric(99)}, Options{Shards: 2}); err == nil {
		t.Fatal("New accepted an invalid metric")
	}
	c, err := New(4, ssam.Config{}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search([]float32{1, 2, 3, 4}, 1); err == nil {
		t.Fatal("Search before load/build succeeded")
	}
	if err := c.LoadFloat32([]float32{1, 2, 3}); err == nil {
		t.Fatal("LoadFloat32 accepted a ragged dataset")
	}
	c.Free()
	if err := c.LoadFloat32(make([]float32, 8)); !errors.Is(err, ssam.ErrFreed) {
		t.Fatalf("load after Free = %v, want ErrFreed", err)
	}
}

func BenchmarkClusterSearch(b *testing.B) {
	const dims, n, k = 32, 4096, 10
	data := randData(n, dims, 41)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := New(dims, ssam.Config{}, Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Free()
			if err := c.LoadFloat32(data); err != nil {
				b.Fatal(err)
			}
			if err := c.BuildIndex(); err != nil {
				b.Fatal(err)
			}
			q := randData(1, dims, 43)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Search(q, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mergeSortedRef guards against regressions in the merge the cluster
// depends on: merging shard lists must equal sorting the union.
func TestMergeSortedMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		var union []topk.Result
		var lists [][]topk.Result
		id := 0
		for s := 0; s < 4; s++ {
			var l []topk.Result
			for i := 0; i < rng.Intn(8); i++ {
				r := topk.Result{ID: id, Dist: float64(rng.Intn(5))}
				id++
				l = append(l, r)
				union = append(union, r)
			}
			topk.SortResults(l)
			lists = append(lists, l)
		}
		k := 1 + rng.Intn(6)
		got := topk.MergeSorted(k, lists...)
		topk.SortResults(union)
		want := union
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}
