package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssam/internal/dataset"
	"ssam/internal/knn"
)

func testDataset() *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "t", N: 3000, Dim: 16, NumQueries: 30, K: 5,
		Clusters: 16, ClusterStd: 0.25, Seed: 7,
	})
}

func TestProbeSeqBasic(t *testing.T) {
	margins := []float64{0.5, 0.1, 0.9}
	probes := probeSeq(0b000, margins, 4)
	if probes[0] != 0 {
		t.Fatalf("first probe = %b, want base code", probes[0])
	}
	// Cheapest perturbation flips bit 1 (margin 0.1), then bit 0 (0.5),
	// then bits {1,0} (0.6).
	want := []uint32{0b000, 0b010, 0b001, 0b011}
	for i, w := range want {
		if probes[i] != w {
			t.Fatalf("probe %d = %03b, want %03b", i, probes[i], w)
		}
	}
}

func TestProbeSeqUnique(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := r.Intn(12) + 1
		margins := make([]float64, bits)
		for i := range margins {
			margins[i] = r.Float64()
		}
		n := r.Intn(40) + 1
		probes := probeSeq(uint32(r.Intn(1<<bits)), margins, n)
		seen := map[uint32]struct{}{}
		for _, p := range probes {
			if _, dup := seen[p]; dup {
				return false
			}
			seen[p] = struct{}{}
		}
		max := 1 << bits
		return len(probes) <= n && len(probes) <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSeqCostOrdered(t *testing.T) {
	margins := []float64{0.3, 0.7, 0.2, 0.9, 0.5}
	probes := probeSeq(0, margins, 20)
	cost := func(code uint32) float64 {
		var c float64
		for b := range margins {
			if code&(1<<uint(b)) != 0 {
				c += margins[b]
			}
		}
		return c
	}
	for i := 1; i < len(probes); i++ {
		if cost(probes[i]) < cost(probes[i-1])-1e-12 {
			t.Fatalf("probe costs not non-decreasing at %d: %v < %v",
				i, cost(probes[i]), cost(probes[i-1]))
		}
	}
}

func TestBuildBucketsPartition(t *testing.T) {
	ds := testDataset()
	x := Build(ds.Data, ds.Dim(), DefaultParams())
	for ti := range x.tables {
		total := 0
		for _, b := range x.tables[ti].buckets {
			total += len(b)
		}
		if total != ds.N() {
			t.Fatalf("table %d buckets hold %d of %d vectors", ti, total, ds.N())
		}
	}
}

func TestRecallImprovesWithProbes(t *testing.T) {
	ds := testDataset()
	x := Build(ds.Data, ds.Dim(), DefaultParams())
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	recallAt := func(probes int) (float64, int) {
		x.Probes = probes
		var recall float64
		evals := 0
		for i, q := range ds.Queries {
			res, st := x.SearchStats(q, 5)
			recall += dataset.Recall(gt[i], res)
			evals += st.DistEvals
		}
		return recall / float64(len(ds.Queries)), evals
	}
	low, lowEvals := recallAt(1)
	high, highEvals := recallAt(256)
	if highEvals <= lowEvals {
		t.Fatalf("probes knob did not increase candidates: %d vs %d", lowEvals, highEvals)
	}
	if high < low {
		t.Fatalf("recall fell with more probes: %v -> %v", low, high)
	}
	if high < 0.6 {
		t.Fatalf("high-probe recall = %v, too low", high)
	}
}

func TestNearDuplicateFound(t *testing.T) {
	// A query equal to a database vector must find it with few probes:
	// identical vectors share every hash code.
	ds := testDataset()
	x := Build(ds.Data, ds.Dim(), DefaultParams())
	x.Probes = 1
	hits := 0
	for i := 0; i < 20; i++ {
		res := x.Search(ds.Row(i*7), 1)
		if len(res) > 0 && res[0].ID == i*7 {
			hits++
		}
	}
	if hits < 20 {
		t.Fatalf("self-query hits = %d/20", hits)
	}
}

func TestDeterministicBuild(t *testing.T) {
	ds := testDataset()
	a := Build(ds.Data, ds.Dim(), DefaultParams())
	b := Build(ds.Data, ds.Dim(), DefaultParams())
	ra := a.Search(ds.Queries[0], 5)
	rb := b.Search(ds.Queries[0], 5)
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic result size")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("nondeterministic build")
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	ds := testDataset()
	x := Build(ds.Data, ds.Dim(), DefaultParams())
	x.Probes = 16
	_, st := x.SearchStats(ds.Queries[0], 5)
	if st.HashDims != x.Bits()*ds.Dim()*x.Tables() {
		t.Fatalf("HashDims = %d", st.HashDims)
	}
	if st.Probes != 16*x.Tables() {
		t.Fatalf("Probes = %d, want %d", st.Probes, 16*x.Tables())
	}
	if st.DistEvals == 0 {
		t.Fatal("no candidates scored")
	}
}

func TestHashMargins(t *testing.T) {
	planes := [][]float32{{1, 0}, {0, -1}}
	m := make([]float64, 2)
	h, m := hashWithMargins([]float32{3, 2}, planes, m)
	if h != 0b01 {
		t.Fatalf("hash = %02b, want 01", h)
	}
	if math.Abs(m[0]-3) > 1e-9 || math.Abs(m[1]-2) > 1e-9 {
		t.Fatalf("margins = %v", m)
	}
}

func TestAccessors(t *testing.T) {
	ds := testDataset()
	x := Build(ds.Data, ds.Dim(), Params{Tables: 3, Bits: 12, Seed: 2})
	if x.N() != ds.N() || x.Bits() != 12 || x.Tables() != 3 {
		t.Fatalf("accessors: %d %d %d", x.N(), x.Bits(), x.Tables())
	}
}

func TestBuildPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(make([]float32, 4), 2, Params{Tables: 1, Bits: 31})
}
