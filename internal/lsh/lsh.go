// Package lsh implements hyperplane multi-probe locality-sensitive
// hashing (HP-MPLSH), the third index characterized in Section II-C of
// the SSAM paper (via the FALCONN library): "MPLSH constructs a set of
// hash tables where each hash location is associated with a bucket of
// similar vectors ... MPLSH applies small perturbations to the hash
// result to create additional probes into the same hash table." The
// paper's configuration cuts the space with 20 random hyperplanes.
package lsh

import (
	"container/heap"
	"math/rand"
	"sort"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Params configures index construction and probing.
type Params struct {
	Tables int   // independent hash tables (L)
	Bits   int   // hyperplanes per table; the paper uses 20
	Seed   int64 // hyperplane randomness
}

// DefaultParams mirrors the paper's HP-MPLSH configuration.
func DefaultParams() Params {
	return Params{Tables: 4, Bits: 20, Seed: 1}
}

type table struct {
	planes  [][]float32 // Bits rows of dim coefficients
	buckets map[uint32][]int32
}

// Index is a built hyperplane MPLSH index.
type Index struct {
	data   []float32
	dim    int
	n      int
	bits   int
	tables []table
	// Probes is the number of buckets probed per table per query;
	// sweeping it trades accuracy for throughput (Fig. 2).
	Probes int
}

// Build constructs the index over a flattened row-major database.
func Build(data []float32, dim int, p Params) *Index {
	if dim <= 0 || len(data)%dim != 0 {
		panic("lsh: data length not a multiple of dim")
	}
	if p.Tables <= 0 {
		p.Tables = 1
	}
	if p.Bits <= 0 || p.Bits > 30 {
		panic("lsh: bits must be in 1..30")
	}
	idx := &Index{data: data, dim: dim, n: len(data) / dim, bits: p.Bits, Probes: 8}
	rng := rand.New(rand.NewSource(p.Seed))
	idx.tables = make([]table, p.Tables)
	for t := range idx.tables {
		tb := &idx.tables[t]
		tb.planes = make([][]float32, p.Bits)
		for b := range tb.planes {
			row := make([]float32, dim)
			for d := range row {
				row[d] = float32(rng.NormFloat64())
			}
			tb.planes[b] = row
		}
		tb.buckets = make(map[uint32][]int32)
		for i := 0; i < idx.n; i++ {
			h, _ := hashWithMargins(idx.row(int32(i)), tb.planes, nil)
			tb.buckets[h] = append(tb.buckets[h], int32(i))
		}
	}
	return idx
}

// N returns the database size.
func (x *Index) N() int { return x.n }

// Bits returns the code width per table.
func (x *Index) Bits() int { return x.bits }

// Tables returns the number of hash tables.
func (x *Index) Tables() int { return len(x.tables) }

func (x *Index) row(i int32) []float32 { return x.data[int(i)*x.dim : (int(i)+1)*x.dim] }

// hashWithMargins computes the hyperplane code of v; if margins is
// non-nil it must have len(planes) capacity and receives |dot|, the
// distance-to-hyperplane proxies used to order probe perturbations.
func hashWithMargins(v []float32, planes [][]float32, margins []float64) (uint32, []float64) {
	var h uint32
	for b, p := range planes {
		d := vec.Dot(v, p)
		if d >= 0 {
			h |= 1 << uint(b)
		}
		if margins != nil {
			if d < 0 {
				d = -d
			}
			margins[b] = d
		}
	}
	return h, margins
}

// pert is one perturbation candidate in the multi-probe sequence: the
// set of flipped bits (mask), its total margin cost, and the index into
// the margin-sorted bit order of the highest bit used, which drives the
// shift/extend expansion.
type pert struct {
	cost float64
	mask uint32
	last int
}

// probeSeq generates the first nprobes codes in increasing perturbation
// cost, where flipping bit b costs margins[b] (Lv et al.'s multi-probe
// construction specialized to hyperplane LSH). The base code is always
// first.
func probeSeq(base uint32, margins []float64, nprobes int) []uint32 {
	order := make([]int, len(margins))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return margins[order[i]] < margins[order[j]] })

	out := make([]uint32, 0, nprobes)
	out = append(out, base)
	if nprobes <= 1 || len(margins) == 0 {
		return out
	}
	h := &pertHeap{}
	heap.Push(h, pert{cost: margins[order[0]], mask: 1 << uint(order[0]), last: 0})
	seen := map[uint32]struct{}{base: {}}
	for len(out) < nprobes && h.Len() > 0 {
		p := heap.Pop(h).(pert)
		code := base ^ p.mask
		if _, dup := seen[code]; !dup {
			seen[code] = struct{}{}
			out = append(out, code)
		}
		// Expand: shift the highest bit up, or extend with the next bit.
		if p.last+1 < len(order) {
			nb := order[p.last+1]
			ob := order[p.last]
			shifted := pert{
				cost: p.cost - margins[ob] + margins[nb],
				mask: (p.mask &^ (1 << uint(ob))) | 1<<uint(nb),
				last: p.last + 1,
			}
			extended := pert{
				cost: p.cost + margins[nb],
				mask: p.mask | 1<<uint(nb),
				last: p.last + 1,
			}
			heap.Push(h, shifted)
			heap.Push(h, extended)
		}
	}
	return out
}

type pertHeap []pert

func (h pertHeap) Len() int            { return len(h) }
func (h pertHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h pertHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pertHeap) Push(x interface{}) { *h = append(*h, x.(pert)) }
func (h *pertHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats records per-query work.
type Stats struct {
	HashDims    int // dimensions touched computing hash codes
	Probes      int // buckets probed
	BucketHits  int // probed buckets that existed
	DistEvals   int // candidates scored
	Dims        int
	ProbeGenOps int // perturbation-heap operations
}

// Search returns the approximate k nearest neighbors of q.
func (x *Index) Search(q []float32, k int) []topk.Result {
	res, _ := x.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (x *Index) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	seen := make(map[int32]struct{})
	margins := make([]float64, x.bits)
	for t := range x.tables {
		tb := &x.tables[t]
		h, _ := hashWithMargins(q, tb.planes, margins)
		st.HashDims += x.bits * x.dim
		probes := probeSeq(h, margins, x.Probes)
		st.ProbeGenOps += len(probes)
		for _, code := range probes {
			st.Probes++
			bucket, ok := tb.buckets[code]
			if !ok {
				continue
			}
			st.BucketHits++
			for _, id := range bucket {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				d := vec.SquaredL2(q, x.row(id))
				st.DistEvals++
				st.Dims += x.dim
				sel.Push(int(id), d)
			}
		}
	}
	return sel.Results(), st
}
