package kdtree

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
)

// TestGlobalCutDims exercises the Section VI-B device-assisted build
// path: cut dimensions supplied up front instead of per-node variance
// estimation.
func TestGlobalCutDims(t *testing.T) {
	ds := testDataset()
	p := DefaultParams()
	// All dimensions offered: quality should be comparable to the
	// standard build.
	dims := make([]int, ds.Dim())
	for i := range dims {
		dims[i] = i
	}
	p.GlobalCutDims = dims
	f := Build(ds.Data, ds.Dim(), p)
	f.Checks = 1024
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	var recall float64
	for i, q := range ds.Queries {
		recall += dataset.Recall(gt[i], f.Search(q, 5))
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.8 {
		t.Fatalf("global-cut forest recall = %v", recall)
	}
}

func TestGlobalCutDimsSubset(t *testing.T) {
	ds := testDataset()
	p := DefaultParams()
	p.GlobalCutDims = []int{0, 3, 7, 11} // a plausible top-variance list
	f := Build(ds.Data, ds.Dim(), p)
	f.Checks = ds.N()
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries[:10], 5, 1)
	var recall float64
	for i, q := range ds.Queries[:10] {
		recall += dataset.Recall(gt[i], f.Search(q, 5))
	}
	recall /= 10
	// Exhaustive checks recover full recall regardless of cut quality.
	if recall < 0.99 {
		t.Fatalf("subset-cut exhaustive recall = %v", recall)
	}
}

func TestGlobalCutDegenerate(t *testing.T) {
	// Constant data on the offered dimension: the builder must
	// terminate with leaves rather than recursing forever.
	data := make([]float32, 200*4)
	for i := 0; i < 200; i++ {
		data[i*4+2] = float32(i) // only dim 2 varies
	}
	p := DefaultParams()
	p.GlobalCutDims = []int{0} // constant dimension
	f := Build(data, 4, p)
	f.Checks = 200
	got := f.Search([]float32{0, 0, 50, 0}, 3)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
}
