// Package kdtree implements the randomized kd-tree forest used by
// FLANN and characterized in Section II-C of the SSAM paper: each tree
// cuts the dataset on a randomly chosen dimension among those with the
// highest variance, leaves hold buckets of similar vectors, and
// queries traverse best-bin-first with a bounded number of additional
// bucket checks ("a user-specified bound typically limits the number
// of additional buckets visited when backtracking").
package kdtree

import (
	"container/heap"
	"math/rand"
	"sort"

	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Params configures forest construction and query behavior.
type Params struct {
	NumTrees int   // parallel randomized trees (FLANN default 4)
	LeafSize int   // max vectors per leaf bucket
	TopDims  int   // cut dimension drawn among this many top-variance dims
	Seed     int64 // construction randomness
	// GlobalCutDims, when non-empty, supplies precomputed
	// high-variance dimensions (e.g. from the SSAM variance-scan
	// offload, Section VI-B): the builder draws cut dimensions from
	// this list instead of estimating per-subset variance, which skips
	// the per-node variance passes entirely. The cut value is still
	// the subset mean on the chosen dimension.
	GlobalCutDims []int
}

// DefaultParams mirrors FLANN's customary settings.
func DefaultParams() Params {
	return Params{NumTrees: 4, LeafSize: 16, TopDims: 5, Seed: 1}
}

type node struct {
	cutDim int
	cutVal float32
	left   int32 // child node index, -1 for leaf
	right  int32
	start  int32 // leaf: range into the tree's permuted id array
	end    int32
}

type tree struct {
	nodes []node
	ids   []int32
}

// Forest is a built randomized kd-tree index over a float32 database.
type Forest struct {
	data  []float32
	dim   int
	n     int
	trees []tree
	// Checks bounds the number of database vectors scored per query;
	// sweeping it trades accuracy for throughput (Fig. 2).
	Checks int
}

// Build constructs a forest over the flattened row-major database.
func Build(data []float32, dim int, p Params) *Forest {
	if dim <= 0 || len(data)%dim != 0 {
		panic("kdtree: data length not a multiple of dim")
	}
	if p.NumTrees <= 0 {
		p.NumTrees = 1
	}
	if p.LeafSize <= 0 {
		p.LeafSize = 16
	}
	if p.TopDims <= 0 {
		p.TopDims = 5
	}
	if p.TopDims > dim {
		p.TopDims = dim
	}
	f := &Forest{data: data, dim: dim, n: len(data) / dim, Checks: 32 * p.LeafSize}
	rng := rand.New(rand.NewSource(p.Seed))
	f.trees = make([]tree, p.NumTrees)
	for t := range f.trees {
		ids := make([]int32, f.n)
		for i := range ids {
			ids[i] = int32(i)
		}
		tr := &f.trees[t]
		tr.ids = ids
		b := &builder{
			f: f, tr: tr,
			rng:      rand.New(rand.NewSource(rng.Int63())),
			leafSize: p.LeafSize, topDims: p.TopDims,
			globalDims: p.GlobalCutDims,
		}
		b.build(0, int32(f.n))
	}
	return f
}

// N returns the database size.
func (f *Forest) N() int { return f.n }

// NumTrees returns the number of randomized trees.
func (f *Forest) NumTrees() int { return len(f.trees) }

func (f *Forest) row(i int32) []float32 { return f.data[int(i)*f.dim : (int(i)+1)*f.dim] }

type builder struct {
	f          *Forest
	tr         *tree
	rng        *rand.Rand
	leafSize   int
	topDims    int
	globalDims []int
}

// build recursively partitions ids[start:end) and returns the node id.
func (b *builder) build(start, end int32) int32 {
	idx := int32(len(b.tr.nodes))
	b.tr.nodes = append(b.tr.nodes, node{left: -1, right: -1, start: start, end: end})
	if end-start <= int32(b.leafSize) {
		return idx
	}
	cutDim, cutVal, ok := b.chooseCut(start, end)
	if !ok { // degenerate: all points identical on candidate dims
		return idx
	}
	mid := b.partition(start, end, cutDim, cutVal)
	if mid == start || mid == end { // unbalanced cut; keep as leaf
		return idx
	}
	left := b.build(start, mid)
	right := b.build(mid, end)
	n := &b.tr.nodes[idx]
	n.cutDim, n.cutVal, n.left, n.right = cutDim, cutVal, left, right
	return idx
}

// chooseCut samples a dimension among the topDims highest-variance
// dimensions of the subset and cuts at its mean, FLANN-style. With
// GlobalCutDims it instead samples from the precomputed list and only
// scans for the mean on that one dimension.
func (b *builder) chooseCut(start, end int32) (dim int, val float32, ok bool) {
	f := b.f
	if len(b.globalDims) > 0 {
		dim = b.globalDims[b.rng.Intn(len(b.globalDims))]
		var sum float64
		var cnt float64
		for i := start; i < end; i++ {
			sum += float64(f.row(b.tr.ids[i])[dim])
			cnt++
		}
		mean := float32(sum / cnt)
		// Degenerate when every value equals the mean.
		for i := start; i < end; i++ {
			if f.row(b.tr.ids[i])[dim] != mean {
				return dim, mean, true
			}
		}
		return 0, 0, false
	}
	mean := make([]float64, f.dim)
	m2 := make([]float64, f.dim)
	// Subsample large subsets for variance estimation.
	step := int32(1)
	if end-start > 256 {
		step = (end - start) / 256
	}
	var cnt float64
	for i := start; i < end; i += step {
		row := f.row(b.tr.ids[i])
		for d, v := range row {
			mean[d] += float64(v)
			m2[d] += float64(v) * float64(v)
		}
		cnt++
	}
	type dv struct {
		d int
		v float64
	}
	vars := make([]dv, f.dim)
	for d := range vars {
		mu := mean[d] / cnt
		vars[d] = dv{d, m2[d]/cnt - mu*mu}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].v > vars[j].v })
	pick := vars[b.rng.Intn(b.topDims)]
	if pick.v <= 0 {
		return 0, 0, false
	}
	return pick.d, float32(mean[pick.d] / cnt), true
}

// partition rearranges ids[start:end) so vectors with row[dim] < val
// precede the rest, returning the split point.
func (b *builder) partition(start, end int32, dim int, val float32) int32 {
	ids := b.tr.ids
	i := start
	for j := start; j < end; j++ {
		if b.f.row(ids[j])[dim] < val {
			ids[i], ids[j] = ids[j], ids[i]
			i++
		}
	}
	return i
}

// branchEntry is a deferred branch in best-bin-first search.
type branchEntry struct {
	tree  int
	node  int32
	bound float64 // lower bound on distance to any point in the branch
}

type branchHeap []branchEntry

func (h branchHeap) Len() int            { return len(h) }
func (h branchHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h branchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *branchHeap) Push(x interface{}) { *h = append(*h, x.(branchEntry)) }
func (h *branchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats records per-query work for the instruction-mix analysis.
type Stats struct {
	NodeVisits int // interior nodes traversed
	LeafScans  int // leaf buckets scanned
	DistEvals  int // vectors scored
	Dims       int
	HeapOps    int // backtracking heap pushes/pops
}

// Search returns the approximate k nearest neighbors of q, visiting at
// most f.Checks database vectors across all trees.
func (f *Forest) Search(q []float32, k int) []topk.Result {
	res, _ := f.SearchStats(q, k)
	return res
}

// SearchStats is Search plus work accounting.
func (f *Forest) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	sel := topk.New(k)
	var st Stats
	visited := make(map[int32]struct{}, f.Checks*2)
	var h branchHeap
	for t := range f.trees {
		f.descend(t, 0, q, sel, &h, visited, &st)
	}
	for len(h) > 0 && st.DistEvals < f.Checks {
		e := heap.Pop(&h).(branchEntry)
		st.HeapOps++
		if b, ok := sel.Bound(); ok && e.bound >= b {
			continue
		}
		f.descend(e.tree, e.node, q, sel, &h, visited, &st)
	}
	return sel.Results(), st
}

// descend walks from node to a leaf, pushing the opposite branches on
// the backtracking heap, then scans the leaf bucket.
func (f *Forest) descend(t int, ni int32, q []float32, sel *topk.Selector, h *branchHeap, visited map[int32]struct{}, st *Stats) {
	tr := &f.trees[t]
	for {
		n := &tr.nodes[ni]
		if n.left < 0 {
			st.LeafScans++
			for _, id := range tr.ids[n.start:n.end] {
				if _, seen := visited[id]; seen {
					continue
				}
				visited[id] = struct{}{}
				d := vec.SquaredL2(q, f.row(id))
				st.DistEvals++
				st.Dims += f.dim
				sel.Push(int(id), d)
			}
			return
		}
		st.NodeVisits++
		diff := float64(q[n.cutDim]) - float64(n.cutVal)
		near, far := n.left, n.right
		if diff >= 0 {
			near, far = n.right, n.left
		}
		heap.Push(h, branchEntry{tree: t, node: far, bound: diff * diff})
		st.HeapOps++
		ni = near
	}
}
