package kdtree

import (
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
)

func testDataset() *dataset.Dataset {
	return dataset.Generate(dataset.Spec{
		Name: "t", N: 2000, Dim: 16, NumQueries: 30, K: 5,
		Clusters: 16, ClusterStd: 0.25, Seed: 5,
	})
}

func TestBuildAndExhaustiveSearch(t *testing.T) {
	ds := testDataset()
	f := Build(ds.Data, ds.Dim(), DefaultParams())
	f.Checks = ds.N() // allow scanning everything
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	var recall float64
	for i, q := range ds.Queries {
		recall += dataset.Recall(gt[i], f.Search(q, 5))
	}
	recall /= float64(len(ds.Queries))
	if recall < 0.999 {
		t.Fatalf("exhaustive kd-tree recall = %v, want ~1", recall)
	}
}

func TestAccuracyThroughputTradeoff(t *testing.T) {
	ds := testDataset()
	f := Build(ds.Data, ds.Dim(), DefaultParams())
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)

	recallAt := func(checks int) (recall float64, evals int) {
		f.Checks = checks
		for i, q := range ds.Queries {
			res, st := f.SearchStats(q, 5)
			recall += dataset.Recall(gt[i], res)
			evals += st.DistEvals
		}
		return recall / float64(len(ds.Queries)), evals
	}

	low, lowEvals := recallAt(32)
	high, highEvals := recallAt(1024)
	if highEvals <= lowEvals {
		t.Fatalf("checks knob did not increase work: %d vs %d", lowEvals, highEvals)
	}
	if high < low {
		t.Fatalf("recall decreased with more checks: %v -> %v", low, high)
	}
	if high < 0.8 {
		t.Fatalf("high-checks recall too low: %v", high)
	}
	if lowEvals >= ds.N()*len(ds.Queries) {
		t.Fatalf("low-checks search degenerated to linear scan")
	}
}

func TestChecksBoundRespected(t *testing.T) {
	ds := testDataset()
	f := Build(ds.Data, ds.Dim(), DefaultParams())
	f.Checks = 100
	for _, q := range ds.Queries[:5] {
		_, st := f.SearchStats(q, 5)
		// The bound is approximate (a descend may finish a leaf), so
		// allow one leaf of slop per tree.
		slack := f.NumTrees() * DefaultParams().LeafSize * 2
		if st.DistEvals > f.Checks+slack {
			t.Fatalf("DistEvals %d exceeds checks %d by more than slack", st.DistEvals, f.Checks)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	ds := testDataset()
	a := Build(ds.Data, ds.Dim(), DefaultParams())
	b := Build(ds.Data, ds.Dim(), DefaultParams())
	q := ds.Queries[0]
	ra := a.Search(q, 5)
	rb := b.Search(q, 5)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("nondeterministic build at %d", i)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	ds := testDataset()
	f := Build(ds.Data, ds.Dim(), DefaultParams())
	f.Checks = 200
	_, st := f.SearchStats(ds.Queries[0], 5)
	if st.DistEvals == 0 || st.Dims == 0 || st.NodeVisits == 0 || st.LeafScans == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Dims != st.DistEvals*ds.Dim() {
		t.Fatalf("Dims %d inconsistent with DistEvals %d", st.Dims, st.DistEvals)
	}
}

func TestSmallDataset(t *testing.T) {
	data := []float32{0, 0, 1, 1, 2, 2, 3, 3}
	f := Build(data, 2, Params{NumTrees: 2, LeafSize: 2, TopDims: 2, Seed: 1})
	f.Checks = 4
	got := f.Search([]float32{0.1, 0.1}, 1)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("nearest = %+v", got)
	}
}

func TestIdenticalPoints(t *testing.T) {
	// All-identical data is fully degenerate: build must terminate and
	// return a single leaf per tree.
	data := make([]float32, 100*4)
	f := Build(data, 4, DefaultParams())
	f.Checks = 100
	got := f.Search(make([]float32, 4), 3)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if r.Dist != 0 {
			t.Fatalf("nonzero distance on identical data: %+v", r)
		}
	}
}

func TestBuildPanicsOnRaggedData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(make([]float32, 10), 3, DefaultParams())
}

func TestMultipleTreesImproveRecall(t *testing.T) {
	ds := testDataset()
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 5, 1)
	meanRecall := func(trees, checks int) float64 {
		p := DefaultParams()
		p.NumTrees = trees
		f := Build(ds.Data, ds.Dim(), p)
		f.Checks = checks
		var r float64
		for i, q := range ds.Queries {
			r += dataset.Recall(gt[i], f.Search(q, 5))
		}
		return r / float64(len(ds.Queries))
	}
	one := meanRecall(1, 256)
	four := meanRecall(4, 256)
	if four+0.05 < one {
		t.Fatalf("4 trees (%v) markedly worse than 1 tree (%v) at equal checks", four, one)
	}
}
