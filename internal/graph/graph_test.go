package graph

import (
	"math/rand"
	"sync"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/knn"
	"ssam/internal/obs"
	"ssam/internal/topk"
)

func testSpec(n, dim, queries int) dataset.Spec {
	return dataset.Spec{
		Name: "graph-test", N: n, Dim: dim, NumQueries: queries,
		K: 10, Clusters: 48, ClusterStd: 0.30, Seed: 0x6a91,
	}
}

func TestBuildDeterminism(t *testing.T) {
	ds := dataset.Generate(testSpec(800, 16, 1))
	p := Params{M: 8, EfConstruction: 40, Seed: 7}
	a := Build(ds.Data, ds.Dim(), p)
	b := Build(ds.Data, ds.Dim(), p)
	if a.Entry() != b.Entry() || a.MaxLayer() != b.MaxLayer() {
		t.Fatalf("entry/maxLayer differ: (%d,%d) vs (%d,%d)",
			a.Entry(), a.MaxLayer(), b.Entry(), b.MaxLayer())
	}
	if a.Edges() != b.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Edges(), b.Edges())
	}
	for i := 0; i < a.N(); i++ {
		if a.Level(i) != b.Level(i) {
			t.Fatalf("node %d level differs: %d vs %d", i, a.Level(i), b.Level(i))
		}
		for l := 0; l <= a.Level(i); l++ {
			fa, fb := a.Neighbors(i, l), b.Neighbors(i, l)
			if len(fa) != len(fb) {
				t.Fatalf("node %d layer %d degree differs: %d vs %d", i, l, len(fa), len(fb))
			}
			for j := range fa {
				if fa[j] != fb[j] {
					t.Fatalf("node %d layer %d neighbor %d differs: %d vs %d",
						i, l, j, fa[j], fb[j])
				}
			}
		}
	}
	// A different seed reassigns levels, so the tower shape changes.
	c := Build(ds.Data, ds.Dim(), Params{M: 8, EfConstruction: 40, Seed: 8})
	same := c.Edges() == a.Edges()
	for i := 0; same && i < a.N(); i++ {
		same = a.Level(i) == c.Level(i)
	}
	if same {
		t.Fatal("different seeds produced identical level assignment and edge count")
	}
}

func TestDegreeBounds(t *testing.T) {
	ds := dataset.Generate(testSpec(1200, 12, 1))
	p := Params{M: 6, EfConstruction: 32, Seed: 3}
	g := Build(ds.Data, ds.Dim(), p)
	for i := 0; i < g.N(); i++ {
		for l := 0; l <= g.Level(i); l++ {
			limit := p.M
			if l == 0 {
				limit = 2 * p.M
			}
			if d := len(g.Neighbors(i, l)); d > limit {
				t.Fatalf("node %d layer %d degree %d exceeds cap %d", i, l, d, limit)
			}
		}
	}
	if g.Neighbors(0, g.Level(0)+1) != nil {
		t.Fatal("Neighbors above a node's level should be nil")
	}
	if g.Neighbors(0, -1) != nil {
		t.Fatal("Neighbors at a negative layer should be nil")
	}
	if g.M() != p.M || g.Dim() != ds.Dim() {
		t.Fatalf("accessors: M=%d Dim=%d", g.M(), g.Dim())
	}
}

// TestRecall pins the issue's bar: recall@10 >= 0.9 at some efSearch on
// a 10k synthetic set against the linear-scan oracle.
func TestRecall(t *testing.T) {
	ds := dataset.Generate(testSpec(10000, 32, 50))
	gt := knn.GroundTruth(ds.Data, ds.Dim(), ds.Queries, 10, 0)
	g := Build(ds.Data, ds.Dim(), Params{M: 12, EfConstruction: 64, Seed: 1})
	sum := 0.0
	var st Stats
	for i, q := range ds.Queries {
		res, s := g.SearchEfStats(q, 10, 128)
		st.Add(s)
		sum += dataset.Recall(gt[i], res)
	}
	recall := sum / float64(len(ds.Queries))
	if recall < 0.9 {
		t.Fatalf("recall@10 = %.3f at ef=128, want >= 0.9", recall)
	}
	if st.DistEvals <= 0 || st.Dims != st.DistEvals*ds.Dim() ||
		st.Hops <= 0 || st.HeapOps <= 0 || st.NeighborFetches <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	k := st.KNN()
	if k.DistEvals != st.DistEvals || k.Dims != st.Dims {
		t.Fatalf("KNN() conversion mismatch: %+v vs %+v", k, st)
	}
	// The traversal must do far less distance work than a linear scan.
	if st.DistEvals >= len(ds.Queries)*ds.N() {
		t.Fatalf("graph search did %d dist evals, no better than linear", st.DistEvals)
	}
}

// TestSerialVsConcurrent pins that concurrent searches of one built
// index return results bit-identical to serial searches.
func TestSerialVsConcurrent(t *testing.T) {
	ds := dataset.Generate(testSpec(3000, 24, 64))
	g := Build(ds.Data, ds.Dim(), DefaultParams())
	serial := make([][]topk.Result, len(ds.Queries))
	for i, q := range ds.Queries {
		serial[i] = g.Search(q, 10)
	}
	conc := make([][]topk.Result, len(ds.Queries))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ds.Queries); i += 8 {
				conc[i] = g.Search(ds.Queries[i], 10)
			}
		}(w)
	}
	wg.Wait()
	for i := range serial {
		if len(serial[i]) != len(conc[i]) {
			t.Fatalf("query %d: result lengths differ", i)
		}
		for j := range serial[i] {
			if serial[i][j] != conc[i][j] {
				t.Fatalf("query %d rank %d: serial %+v != concurrent %+v",
					i, j, serial[i][j], conc[i][j])
			}
		}
	}
}

func TestResultOrderAndEfClamp(t *testing.T) {
	ds := dataset.Generate(testSpec(500, 8, 4))
	g := Build(ds.Data, ds.Dim(), Params{M: 8, EfConstruction: 32, Seed: 2})
	q := ds.Queries[0]
	res := g.SearchEf(q, 10, 1) // ef < k must clamp up to k
	if len(res) != 10 {
		t.Fatalf("ef<k returned %d results, want 10", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist ||
			(res[i].Dist == res[i-1].Dist && res[i].ID <= res[i-1].ID) {
			t.Fatalf("results not in total order at %d: %+v", i, res)
		}
	}
	// SearchEf must not disturb the index's default knob.
	if g.EfSearch != 64 {
		t.Fatalf("EfSearch mutated to %d", g.EfSearch)
	}
}

func TestSmallAndEdgeCases(t *testing.T) {
	one := Build([]float32{1, 2}, 2, Params{Seed: 1})
	res := one.Search([]float32{0, 0}, 5)
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("singleton index: %+v", res)
	}
	small := Build([]float32{0, 0, 1, 1, 2, 2}, 2, Params{M: 2, Seed: 1})
	res = small.Search([]float32{0.9, 0.9}, 10) // k > n
	if len(res) != 3 || res[0].ID != 1 {
		t.Fatalf("k>n: %+v", res)
	}
	if small.N() != 3 {
		t.Fatalf("N() = %d", small.N())
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ragged data", func() { Build([]float32{1, 2, 3}, 2, Params{}) })
	mustPanic("zero dim", func() { Build(nil, 0, Params{}) })
	mustPanic("empty data", func() { Build(nil, 4, Params{}) })
	mustPanic("bad query dim", func() { small.Search([]float32{1}, 1) })
	mustPanic("k=0", func() { small.Search([]float32{1, 1}, 0) })
}

func TestParamsFillAndM1(t *testing.T) {
	p := Params{}.fill()
	if p != DefaultParams() {
		t.Fatalf("fill() = %+v, want defaults", p)
	}
	// M=1 exercises the log(1)=0 guard; the index must still answer.
	g := Build([]float32{0, 1, 2, 3}, 1, Params{M: 1, EfConstruction: 4, Seed: 5})
	res := g.Search([]float32{2.1}, 2)
	if len(res) != 2 {
		t.Fatalf("M=1 search returned %d results", len(res))
	}
}

func TestSearchSpans(t *testing.T) {
	ds := dataset.Generate(testSpec(2000, 16, 1))
	g := Build(ds.Data, ds.Dim(), DefaultParams())
	tracer := obs.NewTracer(0, 8)
	tr := tracer.Trace("graph-query", true)
	_, st := g.SearchStatsSpan(ds.Queries[0], 10, tr.Root())
	data := tracer.Finish(tr)
	descend := data.Root.Find("descend")
	base := data.Root.Find("base")
	if descend == nil || base == nil {
		t.Fatalf("missing traversal spans: %+v", data.Root)
	}
	dh, _ := descend.Tags["hops"].(int)
	bh, _ := base.Tags["hops"].(int)
	if dh+bh != st.Hops {
		t.Fatalf("span hop tags %d+%d != stats hops %d", dh, bh, st.Hops)
	}
	de, _ := descend.Tags["dist_evals"].(int)
	be, _ := base.Tags["dist_evals"].(int)
	if de+be != st.DistEvals {
		t.Fatalf("span dist_evals tags %d+%d != stats %d", de, be, st.DistEvals)
	}
	if base.Tags["ef"] != g.EfSearch {
		t.Fatalf("base span ef tag = %v", base.Tags["ef"])
	}
}

// TestSearchAllocs verifies the pooled scratch keeps the hot path
// allocation-free apart from the returned result slice.
func TestSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation defeats sync.Pool reuse")
	}
	ds := dataset.Generate(testSpec(2000, 16, 4))
	g := Build(ds.Data, ds.Dim(), DefaultParams())
	q := ds.Queries[0]
	g.Search(q, 10) // warm the pool and grow the heaps
	allocs := testing.AllocsPerRun(50, func() { g.Search(q, 10) })
	if allocs > 2 {
		t.Fatalf("Search allocates %.1f objects/op, want <= 2", allocs)
	}
}

func TestEpochWrap(t *testing.T) {
	g := Build([]float32{0, 1, 2, 3, 4, 5, 6, 7}, 1, Params{M: 2, Seed: 9})
	sc := g.getScratch()
	sc.epoch = ^uint32(0) - 1
	for i := range sc.visited {
		sc.visited[i] = sc.epoch // poison with soon-to-wrap marks
	}
	g.putScratch(sc)
	for i := 0; i < 3; i++ { // crosses the wrap; stale marks must clear
		res := g.Search([]float32{3.4}, 2)
		if len(res) != 2 || res[0].ID != 3 {
			t.Fatalf("post-wrap search %d: %+v", i, res)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	ds := dataset.Generate(testSpec(20000, 64, 16))
	g := Build(ds.Data, ds.Dim(), DefaultParams())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Search(ds.Queries[rng.Intn(len(ds.Queries))], 10)
	}
}

func BenchmarkBuild(b *testing.B) {
	ds := dataset.Generate(testSpec(5000, 32, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ds.Data, ds.Dim(), DefaultParams())
	}
}
