// Package graph implements an HNSW-style graph-traversal ANN index
// (Malkov & Yashunin's hierarchical navigable small world), the modern
// high-recall engine the NDSEARCH paper (arXiv:2312.03141) maps onto
// near-data hardware: best-first traversal decomposes into memory-bound
// neighbor-list fetches plus a batched distance kernel, exactly the
// shape of the SSAM data path.
//
// Construction is fully deterministic for a fixed Params.Seed: layer
// assignment draws from a seeded RNG, inserts proceed in id order, and
// every heap and neighbor-selection step breaks distance ties by
// ascending id. Search is read-only over the built adjacency and is
// safe for any number of concurrent callers; per-query state (visited
// marks, both traversal heaps, the extraction buffer) lives in a
// pooled scratch so the hot path allocates nothing after warm-up.
// Because traversal order depends only on the adjacency and the query,
// serial and concurrent searches of the same built index return
// bit-identical results.
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ssam/internal/knn"
	"ssam/internal/obs"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// Params configures graph construction and the default search beam.
type Params struct {
	// M bounds the neighbor count per node on layers above the base
	// (the base layer allows 2M). Default 16.
	M int
	// EfConstruction is the candidate-beam width during insertion;
	// larger builds a higher-quality graph more slowly. Default 100.
	EfConstruction int
	// EfSearch is the default query-time beam width (Index.EfSearch is
	// the live knob). Default 64.
	EfSearch int
	// Seed drives layer assignment; builds with equal seeds (and equal
	// data) produce identical adjacency. Default 1.
	Seed int64
}

// DefaultParams returns the customary HNSW settings.
func DefaultParams() Params {
	return Params{M: 16, EfConstruction: 100, EfSearch: 64, Seed: 1}
}

func (p Params) fill() Params {
	if p.M <= 0 {
		p.M = 16
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 100
	}
	if p.EfSearch <= 0 {
		p.EfSearch = 64
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// maxLevelCap bounds layer assignment so a pathological RNG draw
// cannot build an absurdly tall tower.
const maxLevelCap = 30

// Stats records one query's traversal work — the raw material for both
// the instruction-mix accounting and the near-data cost model
// (ssamdev.GraphIndex charges NeighborFetches as vault reads and
// DistEvals to the distance kernel).
type Stats struct {
	Hops            int // nodes whose neighbor lists were expanded
	DistEvals       int // full distance computations
	Dims            int // vector dimensions touched by distance math
	HeapOps         int // candidate/result heap pushes and pops
	NeighborFetches int // adjacency entries read (device: vault reads)
}

// KNN converts to the linear-scan accounting type so graph queries
// land in the same DistEvals/Dims bookkeeping as every other engine.
func (s Stats) KNN() knn.Stats {
	return knn.Stats{DistEvals: s.DistEvals, Dims: s.Dims}
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hops += other.Hops
	s.DistEvals += other.DistEvals
	s.Dims += other.Dims
	s.HeapOps += other.HeapOps
	s.NeighborFetches += other.NeighborFetches
}

// cd is one traversal candidate. Ordering is always the total order
// (ascending distance, ties by ascending id), the same order the topk
// package uses, so results are deterministic and merge-compatible.
type cd struct {
	d  float64
	id int32
}

// closer reports whether a precedes b under the total order.
func closer(a, b cd) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.id < b.id
}

// node is one vector's adjacency: friends[l] lists its neighbors on
// layer l, for 0 <= l <= level.
type node struct {
	level   int32
	friends [][]int32
}

// Index is a built HNSW-style graph over a float32 database
// (Euclidean metric, squared distances like every engine here).
type Index struct {
	data []float32
	dim  int
	n    int
	m    int     // degree bound, layers >= 1
	m0   int     // degree bound, base layer (2M)
	ml   float64 // level multiplier 1/ln(M)
	efC  int

	entry    int32
	maxLayer int
	nodes    []node

	// EfSearch is the query-time beam width used by Search; sweeping it
	// trades accuracy for throughput (the graph analogue of Checks).
	EfSearch int

	pool sync.Pool // *scratch
}

// Build constructs the graph over a flattened row-major database.
// Construction is single-threaded and deterministic in p.Seed.
func Build(data []float32, dim int, p Params) *Index {
	if dim <= 0 || len(data)%dim != 0 {
		panic("graph: data length not a multiple of dim")
	}
	n := len(data) / dim
	if n == 0 {
		panic("graph: empty database")
	}
	p = p.fill()
	g := &Index{
		data:     data,
		dim:      dim,
		n:        n,
		m:        p.M,
		m0:       2 * p.M,
		ml:       1 / math.Log(float64(p.M)),
		efC:      p.EfConstruction,
		EfSearch: p.EfSearch,
		nodes:    make([]node, n),
	}
	if p.M == 1 {
		g.ml = 1 // log(1) = 0; keep towers short instead of infinite
	}
	g.pool.New = func() any {
		return &scratch{visited: make([]uint32, g.n)}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sc := g.getScratch()
	var st Stats // build-time work, discarded
	for i := 0; i < n; i++ {
		g.insert(sc, int32(i), g.randLevel(rng), &st)
	}
	g.putScratch(sc)
	return g
}

// randLevel draws a geometric layer assignment (the HNSW exponential
// decay) from the build RNG.
func (g *Index) randLevel(rng *rand.Rand) int {
	l := int(-math.Log(1-rng.Float64()) * g.ml)
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return l
}

// N returns the database size.
func (g *Index) N() int { return g.n }

// Dim returns the vector dimensionality.
func (g *Index) Dim() int { return g.dim }

// M returns the per-layer degree bound.
func (g *Index) M() int { return g.m }

// MaxLayer returns the top layer of the built graph.
func (g *Index) MaxLayer() int { return g.maxLayer }

// Entry returns the global entry point (the top-layer node).
func (g *Index) Entry() int { return int(g.entry) }

// Level returns node i's top layer.
func (g *Index) Level(i int) int { return int(g.nodes[i].level) }

// Neighbors returns node i's adjacency on layer l as a read-only view
// (nil when the node does not reach layer l). Exposed for the device
// mapping and for determinism tests.
func (g *Index) Neighbors(i, l int) []int32 {
	nd := &g.nodes[i]
	if l < 0 || l > int(nd.level) {
		return nil
	}
	return nd.friends[l]
}

// Edges returns the total directed edge count, a cheap structural
// fingerprint used by tests and /statsz-style introspection.
func (g *Index) Edges() int {
	total := 0
	for i := range g.nodes {
		for _, fl := range g.nodes[i].friends {
			total += len(fl)
		}
	}
	return total
}

func (g *Index) row(i int32) []float32 {
	return g.data[int(i)*g.dim : (int(i)+1)*g.dim]
}

func (g *Index) capAt(layer int) int {
	if layer == 0 {
		return g.m0
	}
	return g.m
}

// insert adds node id at the given top layer (ids must arrive in
// order; Build guarantees it).
func (g *Index) insert(sc *scratch, id int32, level int, st *Stats) {
	nd := &g.nodes[id]
	nd.level = int32(level)
	nd.friends = make([][]int32, level+1)
	for l := range nd.friends {
		nd.friends[l] = make([]int32, 0, g.capAt(l))
	}
	if id == 0 {
		g.entry = 0
		g.maxLayer = level
		return
	}
	q := g.row(id)
	ep := g.entry
	for l := g.maxLayer; l > level; l-- {
		ep = g.greedy(q, ep, l, st)
	}
	top := level
	if top > g.maxLayer {
		top = g.maxLayer
	}
	for l := top; l >= 0; l-- {
		cands := g.searchLayer(sc, q, ep, g.efC, l, st)
		chosen := g.selectNeighbors(cands, g.m) // M even on the base layer, per the paper
		for _, nb := range chosen {
			g.linkNew(id, nb, l)
			g.linkBack(nb, id, l)
		}
		if len(cands) > 0 {
			ep = cands[0].id
		}
	}
	if level > g.maxLayer {
		g.maxLayer = level
		g.entry = id
	}
}

// linkNew appends a neighbor to the just-inserted node (its list can
// hold at most M selected neighbors, under every layer cap).
func (g *Index) linkNew(from, to int32, layer int) {
	nd := &g.nodes[from]
	nd.friends[layer] = append(nd.friends[layer], to)
}

// linkBack adds the reverse edge, re-selecting the neighbor list with
// the diversity heuristic when it would exceed the layer's cap.
func (g *Index) linkBack(from, to int32, layer int) {
	nd := &g.nodes[from]
	fl := nd.friends[layer]
	cap := g.capAt(layer)
	if len(fl) < cap {
		nd.friends[layer] = append(fl, to)
		return
	}
	base := g.row(from)
	cands := make([]cd, 0, len(fl)+1)
	for _, f := range fl {
		cands = append(cands, cd{vec.SquaredL2(base, g.row(f)), f})
	}
	cands = append(cands, cd{vec.SquaredL2(base, g.row(to)), to})
	sort.Slice(cands, func(i, j int) bool { return closer(cands[i], cands[j]) })
	chosen := g.selectNeighbors(cands, cap)
	nd.friends[layer] = append(fl[:0], chosen...)
}

// selectNeighbors is the HNSW diversity heuristic (Algorithm 4 with
// keepPruned): walk candidates closest-first, keep one only if it is
// closer to the base vector than to every already-kept neighbor, then
// backfill with the closest rejected candidates. cands must be sorted
// ascending under the total order.
func (g *Index) selectNeighbors(cands []cd, m int) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		for i, c := range cands {
			out[i] = c.id
		}
		return out
	}
	selected := make([]cd, 0, m)
	var pruned []cd
	for _, c := range cands {
		if len(selected) == m {
			break
		}
		keep := true
		for _, s := range selected {
			if vec.SquaredL2(g.row(c.id), g.row(s.id)) < c.d {
				keep = false
				break
			}
		}
		if keep {
			selected = append(selected, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(selected) == m {
			break
		}
		selected = append(selected, c)
	}
	out := make([]int32, len(selected))
	for i, c := range selected {
		out[i] = c.id
	}
	return out
}

// greedy is the upper-layer descent: repeatedly hop to the closest
// neighbor until no neighbor improves (ef=1 best-first).
func (g *Index) greedy(q []float32, ep int32, layer int, st *Stats) int32 {
	cur := cd{vec.SquaredL2(q, g.row(ep)), ep}
	st.DistEvals++
	st.Dims += g.dim
	for {
		friends := g.nodes[cur.id].friends[layer]
		st.Hops++
		st.NeighborFetches += len(friends)
		improved := false
		for _, nb := range friends {
			d := vec.SquaredL2(q, g.row(nb))
			st.DistEvals++
			st.Dims += g.dim
			if closer(cd{d, nb}, cur) {
				cur = cd{d, nb}
				improved = true
			}
		}
		if !improved {
			return cur.id
		}
	}
}

// searchLayer is the ef-bounded best-first search on one layer,
// returning up to ef candidates sorted ascending under the total
// order. The returned slice is owned by sc and valid until the next
// searchLayer call on the same scratch.
func (g *Index) searchLayer(sc *scratch, q []float32, ep int32, ef, layer int, st *Stats) []cd {
	sc.reset()
	sc.visit(ep)
	d0 := vec.SquaredL2(q, g.row(ep))
	st.DistEvals++
	st.Dims += g.dim
	sc.pushCand(cd{d0, ep})
	sc.pushRes(cd{d0, ep})
	st.HeapOps += 2
	for len(sc.cand) > 0 {
		c := sc.popCand()
		st.HeapOps++
		if len(sc.res) == ef && closer(sc.res[0], c) {
			break // best open candidate is worse than the worst result
		}
		st.Hops++
		friends := g.nodes[c.id].friends[layer]
		st.NeighborFetches += len(friends)
		for _, nb := range friends {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			sc.visited[nb] = sc.epoch
			d := vec.SquaredL2(q, g.row(nb))
			st.DistEvals++
			st.Dims += g.dim
			e := cd{d, nb}
			if len(sc.res) < ef {
				sc.pushRes(e)
				sc.pushCand(e)
				st.HeapOps += 2
			} else if closer(e, sc.res[0]) {
				sc.popRes()
				sc.pushRes(e)
				sc.pushCand(e)
				st.HeapOps += 3
			}
		}
	}
	// Drain the bounded max-heap worst-first into out back-to-front so
	// the returned slice is ascending — no sort, no allocation.
	n := len(sc.res)
	if cap(sc.out) < n {
		sc.out = make([]cd, n)
	}
	sc.out = sc.out[:n]
	for i := n - 1; i >= 0; i-- {
		sc.out[i] = sc.popRes()
	}
	return sc.out
}

// Search returns the approximate k nearest neighbors of q using the
// index's EfSearch beam. Safe for concurrent use.
func (g *Index) Search(q []float32, k int) []topk.Result {
	res, _ := g.SearchStats(q, k)
	return res
}

// SearchStats is Search plus traversal work accounting.
func (g *Index) SearchStats(q []float32, k int) ([]topk.Result, Stats) {
	return g.SearchEfStatsSpan(q, k, g.EfSearch, nil)
}

// SearchStatsSpan is SearchStats recording the traversal as children
// of sp: a "descend" span for the upper-layer hops and a "base" span
// for the layer-0 beam search, each tagged with its hop and
// distance-eval counts. A nil span is the untraced fast path.
func (g *Index) SearchStatsSpan(q []float32, k int, sp *obs.Span) ([]topk.Result, Stats) {
	return g.SearchEfStatsSpan(q, k, g.EfSearch, sp)
}

// SearchEf is Search with an explicit beam width (ef < k is raised to
// k), leaving EfSearch untouched — the sweep-friendly entry point.
func (g *Index) SearchEf(q []float32, k, ef int) []topk.Result {
	res, _ := g.SearchEfStats(q, k, ef)
	return res
}

// SearchEfStats is SearchEf plus traversal work accounting.
func (g *Index) SearchEfStats(q []float32, k, ef int) ([]topk.Result, Stats) {
	return g.SearchEfStatsSpan(q, k, ef, nil)
}

// SearchEfStatsSpan is the full search entry point: explicit beam
// width, work accounting, and traversal spans under sp.
func (g *Index) SearchEfStatsSpan(q []float32, k, ef int, sp *obs.Span) ([]topk.Result, Stats) {
	if len(q) != g.dim {
		panic(fmt.Sprintf("graph: query dim %d, want %d", len(q), g.dim))
	}
	if k <= 0 {
		panic("graph: k must be positive")
	}
	if ef < k {
		ef = k
	}
	var st Stats
	var dsp *obs.Span
	if sp != nil { // guard: building the variadic tags would allocate
		dsp = sp.Start("descend", obs.Tag{Key: "layers", Value: g.maxLayer})
	}
	ep := g.entry
	for l := g.maxLayer; l >= 1; l-- {
		ep = g.greedy(q, ep, l, &st)
	}
	if dsp != nil {
		dsp.SetTag("hops", st.Hops)
		dsp.SetTag("dist_evals", st.DistEvals)
		dsp.End()
	}
	descend := st

	var bsp *obs.Span
	if sp != nil {
		bsp = sp.Start("base", obs.Tag{Key: "ef", Value: ef})
	}
	sc := g.getScratch()
	out := g.searchLayer(sc, q, ep, ef, 0, &st)
	if len(out) > k {
		out = out[:k]
	}
	res := make([]topk.Result, len(out))
	for i, c := range out {
		res[i] = topk.Result{ID: int(c.id), Dist: c.d}
	}
	g.putScratch(sc)
	if bsp != nil {
		bsp.SetTag("hops", st.Hops-descend.Hops)
		bsp.SetTag("dist_evals", st.DistEvals-descend.DistEvals)
		bsp.End()
	}
	return res, st
}

// --- pooled per-query scratch ---

// scratch holds one search's mutable state: an epoch-versioned visited
// array (O(1) reset), the candidate min-heap, the bounded result
// max-heap, and the extraction buffer. Reused via Index.pool so the
// steady-state hot path performs no allocations.
type scratch struct {
	visited []uint32
	epoch   uint32
	cand    []cd // min-heap under closer
	res     []cd // max-heap under closer (root = worst retained)
	out     []cd
}

func (sc *scratch) reset() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale marks could alias, clear once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
}

func (sc *scratch) visit(id int32) { sc.visited[id] = sc.epoch }

func (sc *scratch) pushCand(e cd) {
	sc.cand = append(sc.cand, e)
	i := len(sc.cand) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !closer(sc.cand[i], sc.cand[p]) {
			break
		}
		sc.cand[i], sc.cand[p] = sc.cand[p], sc.cand[i]
		i = p
	}
}

func (sc *scratch) popCand() cd {
	h := sc.cand
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	sc.cand = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && closer(h[l], h[small]) {
			small = l
		}
		if r < n && closer(h[r], h[small]) {
			small = r
		}
		if small == i {
			return top
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

func (sc *scratch) pushRes(e cd) {
	sc.res = append(sc.res, e)
	i := len(sc.res) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !closer(sc.res[p], sc.res[i]) {
			break
		}
		sc.res[i], sc.res[p] = sc.res[p], sc.res[i]
		i = p
	}
}

func (sc *scratch) popRes() cd {
	h := sc.res
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	sc.res = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && closer(h[big], h[l]) {
			big = l
		}
		if r < n && closer(h[big], h[r]) {
			big = r
		}
		if big == i {
			return top
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func (g *Index) getScratch() *scratch { return g.pool.Get().(*scratch) }
func (g *Index) putScratch(sc *scratch) {
	g.pool.Put(sc)
}
