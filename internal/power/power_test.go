package power

import (
	"math"
	"testing"
)

func TestTableIVExactTotals(t *testing.T) {
	// Table IV totals are self-consistent in the paper; our model must
	// reproduce them exactly at the published points.
	want := map[int]float64{2: 30.52, 4: 38.34, 8: 58.21, 16: 97.48}
	for vlen, total := range want {
		m, err := AcceleratorArea(vlen)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Total()-total) > 0.02 {
			t.Errorf("SSAM-%d area total = %v, want %v", vlen, m.Total(), total)
		}
	}
}

func TestTableIIIModules(t *testing.T) {
	m, err := AcceleratorPower(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.PriorityQueue != 1.42 || m.Scratchpad != 2.58 || m.RegFiles != 4.68 {
		t.Fatalf("SSAM-8 power row = %+v", m)
	}
}

func TestPowerGrowsWithVectorLength(t *testing.T) {
	var prev float64
	for i, vlen := range SupportedVectorLengths() {
		m, err := AcceleratorPower(vlen)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && m.Total() <= prev {
			t.Errorf("power total not increasing at VL=%d", vlen)
		}
		prev = m.Total()
	}
}

func TestAreaGrowsWithVectorLength(t *testing.T) {
	var prev float64
	for i, vlen := range SupportedVectorLengths() {
		m, err := AcceleratorArea(vlen)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && m.Total() <= prev {
			t.Errorf("area total not increasing at VL=%d", vlen)
		}
		prev = m.Total()
	}
}

func TestScratchpadDominatesArea(t *testing.T) {
	// "a large portion of the accelerator design is devoted to the
	// SRAMs composing the scratchpad memory"
	for _, vlen := range SupportedVectorLengths() {
		m, _ := AcceleratorArea(vlen)
		if m.Scratchpad < 0.5*m.Total() {
			t.Errorf("SSAM-%d scratchpad %.2f not dominant in %.2f", vlen, m.Scratchpad, m.Total())
		}
	}
}

func TestInterpolation(t *testing.T) {
	m6, err := AcceleratorArea(6)
	if err != nil {
		t.Fatal(err)
	}
	m4, _ := AcceleratorArea(4)
	m8, _ := AcceleratorArea(8)
	if m6.Total() <= m4.Total() || m6.Total() >= m8.Total() {
		t.Fatalf("interpolated SSAM-6 total %v not between %v and %v",
			m6.Total(), m4.Total(), m8.Total())
	}
	// Midpoint check.
	want := (m4.Scratchpad + m8.Scratchpad) / 2
	if math.Abs(m6.Scratchpad-want) > 1e-9 {
		t.Fatalf("SSAM-6 scratchpad = %v, want %v", m6.Scratchpad, want)
	}
}

func TestExtrapolationAndErrors(t *testing.T) {
	if _, err := AcceleratorArea(0); err == nil {
		t.Fatal("no error for VL=0")
	}
	m32, err := AcceleratorArea(32)
	if err != nil {
		t.Fatal(err)
	}
	m16, _ := AcceleratorArea(16)
	if m32.Total() <= m16.Total() {
		t.Fatalf("extrapolated SSAM-32 (%v) not larger than SSAM-16 (%v)", m32.Total(), m16.Total())
	}
}

func TestTechScaling(t *testing.T) {
	if got := AreaScale(65, 65); got != 1 {
		t.Fatalf("identity area scale = %v", got)
	}
	if got := AreaScale(90, 28); math.Abs(got-(28.0/90)*(28.0/90)) > 1e-12 {
		t.Fatalf("AreaScale(90,28) = %v", got)
	}
	if got := PowerScale(65, 28); math.Abs(got-28.0/65) > 1e-12 {
		t.Fatalf("PowerScale = %v", got)
	}
}

func TestHMCLogicBudget(t *testing.T) {
	// The paper: 729 mm^2 at 90 nm is ~70.6 mm^2 at 28 nm, "roughly
	// the same or larger than our SSAM accelerator design".
	b := HMCLogicBudget28nm()
	if math.Abs(b-70.56) > 0.1 {
		t.Fatalf("HMC logic budget = %v, want ~70.6", b)
	}
	m2, _ := AcceleratorArea(2)
	m8, _ := AcceleratorArea(8)
	if m2.Total() > b {
		t.Errorf("SSAM-2 (%v mm^2) exceeds the HMC logic budget (%v)", m2.Total(), b)
	}
	_ = m8 // SSAM-8/16 exceed the 1.0 budget, as the paper notes.
}

func TestModuleArithmetic(t *testing.T) {
	a := Module{1, 1, 1, 1, 1, 1, 1}
	b := a.Scale(2)
	if b.Total() != 14 {
		t.Fatalf("Scale/Total = %v", b.Total())
	}
	c := a.Add(b)
	if c.Total() != 21 {
		t.Fatalf("Add/Total = %v", c.Total())
	}
}
