package power

// Activity-factor energy model. The paper estimates power by
// generating "traces from real datasets to measure realistic activity
// factors" and feeding them to PrimeTime; our equivalent charges
// per-event energies against the counters the cycle simulator already
// collects, calibrated so a fully busy design dissipates the Table III
// power at the nominal 1 GHz clock.

// Activity summarizes one query's (or any window's) simulated events
// across all processing units of a module.
type Activity struct {
	Seconds      float64 // window length (device latency)
	Cycles       uint64  // slowest PU's cycles
	Instructions uint64  // summed over PUs
	VectorInsts  uint64
	DRAMBytes    uint64
	PQInserts    uint64
	PUs          int // processing units on the module
}

// EnergyModel holds per-event energies (joules) plus a static power
// floor for the whole module.
type EnergyModel struct {
	ScalarOpJ  float64
	VectorOpJ  float64 // per vector instruction (all lanes)
	DRAMByteJ  float64
	PQInsertJ  float64
	StaticW    float64 // leakage + clock tree for the whole design
	ClockHz    float64
	DesignPUs  int     // PUs assumed by the calibration
	BusyPowerW float64 // Table III total the model calibrates to
}

// Calibration constants: fractions of busy power attributed to each
// event class for a distance-scan workload (roughly one vector op and
// four bytes of DRAM traffic per lane-element, a scalar op per vector
// instruction of loop overhead, rare queue inserts).
const (
	staticFraction = 0.30
	vectorFraction = 0.40
	scalarFraction = 0.15
	dramFraction   = 0.13
	pqFraction     = 0.02
)

// NewEnergyModel calibrates the model for an SSAM-vlen module with the
// given number of processing units running at clockHz: if every PU
// issues one instruction per cycle with a scan-like event mix, average
// power equals the Table III total.
func NewEnergyModel(vlen, designPUs int, clockHz float64) (EnergyModel, error) {
	p, err := AcceleratorPower(vlen)
	if err != nil {
		return EnergyModel{}, err
	}
	total := p.Total()
	if designPUs < 1 {
		designPUs = 1
	}
	// Busy event rates for the whole module, events/second: every PU
	// issues one instruction per cycle; scan kernels are ~60% vector
	// instructions; each vector instruction moves 4*vlen bytes.
	instRate := float64(designPUs) * clockHz
	vecRate := 0.6 * instRate
	scalarRate := 0.4 * instRate
	dramRate := vecRate * 4 * float64(vlen) / 2 // half the vector insts are loads
	pqRate := 0.01 * instRate

	m := EnergyModel{
		StaticW:    staticFraction * total,
		ClockHz:    clockHz,
		DesignPUs:  designPUs,
		BusyPowerW: total,
	}
	m.VectorOpJ = vectorFraction * total / vecRate
	m.ScalarOpJ = scalarFraction * total / scalarRate
	m.DRAMByteJ = dramFraction * total / dramRate
	m.PQInsertJ = pqFraction * total / pqRate
	return m, nil
}

// Energy returns the joules dissipated for the activity window:
// per-event dynamic energy plus static power for the window duration.
func (m EnergyModel) Energy(a Activity) float64 {
	scalar := float64(a.Instructions - a.VectorInsts)
	dyn := m.VectorOpJ*float64(a.VectorInsts) +
		m.ScalarOpJ*scalar +
		m.DRAMByteJ*float64(a.DRAMBytes) +
		m.PQInsertJ*float64(a.PQInserts)
	return dyn + m.StaticW*a.Seconds
}

// AveragePower returns the window's mean power draw in watts.
func (m EnergyModel) AveragePower(a Activity) float64 {
	if a.Seconds <= 0 {
		return 0
	}
	return m.Energy(a) / a.Seconds
}

// Utilization returns the fraction of issue slots used across the
// module: 1.0 means every PU issued every cycle.
func (a Activity) Utilization() float64 {
	if a.Cycles == 0 || a.PUs == 0 {
		return 0
	}
	return float64(a.Instructions) / (float64(a.Cycles) * float64(a.PUs))
}
