package power

import (
	"math"
	"testing"
)

// busyActivity models one second of a fully utilized SSAM-vlen module
// with the scan-like event mix the model is calibrated on.
func busyActivity(vlen, pus int, clock float64) Activity {
	inst := uint64(float64(pus) * clock)
	vecInst := uint64(0.6 * float64(inst))
	return Activity{
		Seconds:      1,
		Cycles:       uint64(clock),
		Instructions: inst,
		VectorInsts:  vecInst,
		DRAMBytes:    uint64(float64(vecInst) * 4 * float64(vlen) / 2),
		PQInserts:    uint64(0.01 * float64(inst)),
		PUs:          pus,
	}
}

func TestEnergyModelCalibration(t *testing.T) {
	// A fully busy module must dissipate the Table III power.
	for _, vlen := range SupportedVectorLengths() {
		m, err := NewEnergyModel(vlen, 64, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := AcceleratorPower(vlen)
		got := m.AveragePower(busyActivity(vlen, 64, 1e9))
		if math.Abs(got-p.Total()) > 0.01*p.Total() {
			t.Errorf("SSAM-%d: busy power %v, want %v", vlen, got, p.Total())
		}
	}
}

func TestIdlePowerIsStaticFloor(t *testing.T) {
	m, err := NewEnergyModel(8, 64, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	idle := Activity{Seconds: 1, Cycles: 1e9, PUs: 64}
	got := m.AveragePower(idle)
	if math.Abs(got-m.StaticW) > 1e-9 {
		t.Fatalf("idle power = %v, want static floor %v", got, m.StaticW)
	}
	p, _ := AcceleratorPower(8)
	if m.StaticW >= p.Total() {
		t.Fatal("static floor should be below busy power")
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	m, err := NewEnergyModel(8, 64, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	half := busyActivity(8, 64, 1e9)
	half.Instructions /= 2
	half.VectorInsts /= 2
	half.DRAMBytes /= 2
	half.PQInserts /= 2
	full := busyActivity(8, 64, 1e9)
	if m.Energy(half) >= m.Energy(full) {
		t.Fatal("less work should cost less energy")
	}
	if m.Energy(half) <= m.StaticW { // static floor still paid
		t.Fatal("energy should exceed the static floor")
	}
}

func TestUtilization(t *testing.T) {
	a := Activity{Cycles: 1000, Instructions: 32000, PUs: 64}
	if got := a.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if (Activity{}).Utilization() != 0 {
		t.Fatal("zero activity utilization should be 0")
	}
}

func TestEnergyModelErrors(t *testing.T) {
	if _, err := NewEnergyModel(0, 64, 1e9); err == nil {
		t.Fatal("vlen 0 accepted")
	}
	m, err := NewEnergyModel(4, 0, 1e9) // designPUs clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if m.DesignPUs != 1 {
		t.Fatalf("DesignPUs = %d, want 1", m.DesignPUs)
	}
	if m.AveragePower(Activity{}) != 0 {
		t.Fatal("zero-window power should be 0")
	}
}
