// Package power is the SSAM accelerator power and area model
// reproducing Tables III and IV of the paper. The paper synthesized
// and place-and-routed the design in a TSMC 65 nm standard-cell
// library (Synopsys Design Compiler / IC Compiler, ARM memory
// compiler SRAMs, PrimeTime power analysis) and normalized to 28 nm
// with linear scaling factors; we cannot run an EDA flow here, so the
// model is calibrated: the four published design points (vector
// lengths 2, 4, 8, 16) reproduce the tables exactly, and other vector
// lengths interpolate linearly per module, which matches the visible
// structure of the data (queue/stack/instruction memory roughly
// constant; ALUs, register files, scratchpad and pipeline control
// scaling with vector width).
package power

import "fmt"

// Module is a per-module breakdown in the units of the corresponding
// table: watts for power, mm^2 for area, at 28 nm.
type Module struct {
	PriorityQueue   float64
	StackUnit       float64
	ALUs            float64
	Scratchpad      float64
	RegFiles        float64
	InsMemory       float64
	PipelineControl float64
}

// Total returns the sum over modules. Note the paper's Table III
// "Total" column is slightly below the row sums as printed; we report
// the self-consistent sum and record the difference in EXPERIMENTS.md.
func (m Module) Total() float64 {
	return m.PriorityQueue + m.StackUnit + m.ALUs + m.Scratchpad +
		m.RegFiles + m.InsMemory + m.PipelineControl
}

// Add returns the module-wise sum of m and other.
func (m Module) Add(other Module) Module {
	return Module{
		m.PriorityQueue + other.PriorityQueue,
		m.StackUnit + other.StackUnit,
		m.ALUs + other.ALUs,
		m.Scratchpad + other.Scratchpad,
		m.RegFiles + other.RegFiles,
		m.InsMemory + other.InsMemory,
		m.PipelineControl + other.PipelineControl,
	}
}

// Scale returns m with every module multiplied by f.
func (m Module) Scale(f float64) Module {
	return Module{
		m.PriorityQueue * f, m.StackUnit * f, m.ALUs * f,
		m.Scratchpad * f, m.RegFiles * f, m.InsMemory * f,
		m.PipelineControl * f,
	}
}

// The published design points (28 nm). Keys are vector lengths.
var powerTable = map[int]Module{
	2:  {1.63, 1.02, 0.33, 1.92, 2.52, 0.45, 2.28},
	4:  {1.56, 1.00, 0.32, 2.16, 3.24, 0.44, 2.82},
	8:  {1.42, 1.02, 0.32, 2.58, 4.68, 0.44, 4.28},
	16: {1.45, 0.84, 0.51, 3.80, 6.97, 0.41, 7.09},
}

var areaTable = map[int]Module{
	2:  {1.07, 0.52, 1.20, 20.70, 1.35, 4.76, 0.92},
	4:  {1.06, 0.52, 1.65, 27.28, 1.78, 4.76, 1.29},
	8:  {1.04, 0.51, 3.55, 43.53, 2.64, 4.76, 2.18},
	16: {1.04, 0.51, 6.79, 76.26, 4.33, 4.76, 3.79},
}

// SupportedVectorLengths lists the published design points.
func SupportedVectorLengths() []int { return []int{2, 4, 8, 16} }

// AcceleratorPower returns the Table III breakdown (watts, 28 nm) for
// the SSAM design at the given vector length. Published points are
// exact; others interpolate/extrapolate linearly between neighbors.
func AcceleratorPower(vlen int) (Module, error) {
	return lookup(powerTable, vlen)
}

// AcceleratorArea returns the Table IV breakdown (mm^2, 28 nm).
func AcceleratorArea(vlen int) (Module, error) {
	return lookup(areaTable, vlen)
}

func lookup(table map[int]Module, vlen int) (Module, error) {
	if vlen < 1 {
		return Module{}, fmt.Errorf("power: vector length %d out of range", vlen)
	}
	if m, ok := table[vlen]; ok {
		return m, nil
	}
	// Piecewise-linear in vector length over the published points.
	points := SupportedVectorLengths()
	lo, hi := points[0], points[len(points)-1]
	for _, p := range points {
		if p < vlen && p > lo {
			lo = p
		}
		if p > vlen && p < hi {
			hi = p
		}
	}
	if vlen < points[0] {
		lo, hi = points[0], points[1]
	}
	if vlen > points[len(points)-1] {
		lo, hi = points[len(points)-2], points[len(points)-1]
	}
	t := float64(vlen-lo) / float64(hi-lo)
	a, b := table[lo], table[hi]
	return a.Scale(1 - t).Add(b.Scale(t)), nil
}

// AreaScale returns the factor to convert an area from one technology
// node to another assuming dimensions shrink linearly with feature
// size (area goes with the square).
func AreaScale(fromNm, toNm float64) float64 {
	r := toNm / fromNm
	return r * r
}

// PowerScale returns the factor to convert dynamic power across nodes
// using the paper's linear scaling convention.
func PowerScale(fromNm, toNm float64) float64 {
	return toNm / fromNm
}

// HMC1LogicDie is the HMC 1.0 logic die area in mm^2 at 90 nm,
// reported by Pawlowski [17]; the paper normalizes it to ~70.6 mm^2 at
// 28 nm as a sanity bound on accelerator area.
const HMC1LogicDie90nm = 729.0

// HMCLogicBudget28nm returns the normalized HMC logic-die area the
// accelerator must roughly fit within.
func HMCLogicBudget28nm() float64 {
	return HMC1LogicDie90nm * AreaScale(90, 28)
}
