package ap

import (
	"math"
	"testing"
)

// Paper workload shapes for Table VI (binarized datasets).
const (
	gloveN, gloveBits     = 1200000, 100
	gistN, gistBits       = 1000000, 960
	alexnetN, alexnetBits = 1000000, 4096
)

func TestGen1GloVeMatchesTableVI(t *testing.T) {
	// Table VI: first-generation AP, GloVe: 288 queries/s. The model
	// is calibrated; require within 20%.
	got := Gen1().QPS(gloveN, gloveBits)
	if math.Abs(got-288)/288 > 0.20 {
		t.Fatalf("gen1 GloVe QPS = %v, want ~288", got)
	}
}

func TestGen2GloVeMatchesTableVI(t *testing.T) {
	got := Gen2().QPS(gloveN, gloveBits)
	if math.Abs(got-1117)/1117 > 0.20 {
		t.Fatalf("gen2 GloVe QPS = %v, want ~1117", got)
	}
}

func TestGen2GISTNearTableVI(t *testing.T) {
	got := Gen2().QPS(gistN, gistBits)
	if got < 5 || got > 30 {
		t.Fatalf("gen2 GIST QPS = %v, want ~10.55", got)
	}
}

func TestThroughputFallsWithDimensionality(t *testing.T) {
	// The AP's defining weakness in the paper: high-dimensional
	// descriptors fit only a handful of vectors per configuration.
	for _, g := range []Config{Gen1(), Gen2()} {
		glove := g.QPS(gloveN, gloveBits)
		gist := g.QPS(gistN, gistBits)
		alex := g.QPS(alexnetN, alexnetBits)
		if !(glove > gist && gist > alex) {
			t.Errorf("%s: throughput not decreasing with dims: %v %v %v",
				g.Name, glove, gist, alex)
		}
		// The drop is orders of magnitude, not marginal.
		if glove/alex < 50 {
			t.Errorf("%s: GloVe/AlexNet ratio = %v, want >> 50", g.Name, glove/alex)
		}
	}
}

func TestGen2BeatsGen1(t *testing.T) {
	cases := []struct{ n, bits int }{
		{gloveN, gloveBits}, {gistN, gistBits}, {alexnetN, alexnetBits},
	}
	for _, c := range cases {
		if Gen2().QPS(c.n, c.bits) <= Gen1().QPS(c.n, c.bits) {
			t.Errorf("gen2 not faster at bits=%d", c.bits)
		}
	}
}

func TestVectorsPerConfig(t *testing.T) {
	g := Gen1()
	if v := g.VectorsPerConfig(gloveBits); v < 10000 {
		t.Fatalf("GloVe vectors/config = %d, want many", v)
	}
	if v := g.VectorsPerConfig(alexnetBits); v > 20 {
		t.Fatalf("AlexNet vectors/config = %d, want a handful", v)
	}
	if g.VectorsPerConfig(1<<20) != 1 {
		t.Fatal("oversized vector should still report 1 per config")
	}
}

func TestConfigurationsCoverDataset(t *testing.T) {
	g := Gen1()
	per := g.VectorsPerConfig(gistBits)
	cfgs := g.Configurations(gistN, gistBits)
	if cfgs*per < gistN {
		t.Fatalf("%d configs x %d vectors < %d", cfgs, per, gistN)
	}
	if (cfgs-1)*per >= gistN {
		t.Fatalf("too many configurations: %d", cfgs)
	}
}

func TestBatchingAmortizesReconfig(t *testing.T) {
	g := Gen1()
	single := g.BatchQPS(gistN, gistBits, 1)
	batched := g.BatchQPS(gistN, gistBits, 1000)
	if batched <= single {
		t.Fatal("batching should amortize reconfiguration")
	}
}

func TestStreamTime(t *testing.T) {
	g := Gen1()
	got := g.StreamSecondsPerQuery(1024) // 128 symbols at 133 MHz
	want := 128.0 / 133e6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("stream time = %v, want %v", got, want)
	}
}
