// Package ap models the Micron Automata Processor baseline of Table
// VI (Section VI-C). The AP evaluates nondeterministic finite automata
// against a streamed query symbol-by-symbol; following the paper's
// companion work (Lee et al., "Similarity Search on Automata
// Processors", IPDPS 2017 [53]), each database vector is encoded as a
// Hamming-distance-counting NFA. A board configuration holds as many
// vector automata as its state-transition-element (STE) budget allows;
// datasets that do not fit must be processed in multiple
// configurations with a full reconfiguration between them — the
// dominant cost for the large, high-dimensional datasets in the paper
// ("for high dimensional vectors, each automata processor
// configuration can only fit a handful of vectors at a time").
//
// Calibration: STE demand per vector grows quadratically with code
// width (the distance-counting automaton needs a counting chain per
// position); the coefficient, board capacities and reconfiguration
// time below reproduce the published Table VI throughputs within a
// small factor (exactly for GloVe; see EXPERIMENTS.md). The paper
// frames the second generation as having "100x faster
// reconfiguration"; the published numbers are however consistent with
// a ~4x capacity increase at equal reconfiguration time, which is the
// interpretation this model uses (both knobs are exposed).
package ap

import "math"

// Config describes one AP generation.
type Config struct {
	Name string
	// CapacitySTE is the usable state-transition elements per board
	// configuration.
	CapacitySTE float64
	// ReconfigSeconds is the time to load a new configuration.
	ReconfigSeconds float64
	// SymbolRate is query streaming speed in symbols/second (8-bit
	// symbols at 133 MHz).
	SymbolRate float64
	// STEPerVectorCoeff scales the quadratic per-vector STE demand:
	// STEs(vector) = coeff * bits^2.
	STEPerVectorCoeff float64
}

// Gen1 returns the first-generation board model.
func Gen1() Config {
	return Config{
		Name:              "ap-gen1",
		CapacitySTE:       1.5e6,
		ReconfigSeconds:   50e-3,
		SymbolRate:        133e6,
		STEPerVectorCoeff: 0.009,
	}
}

// Gen2 returns the second-generation board model (larger STE budget).
func Gen2() Config {
	c := Gen1()
	c.Name = "ap-gen2"
	c.CapacitySTE = 6e6
	return c
}

// VectorsPerConfig returns how many bits-wide vector automata fit in
// one configuration (at least 1: a vector too large for the fabric is
// split across reconfigurations, modeled as one per config).
func (c Config) VectorsPerConfig(bits int) int {
	ste := c.STEPerVectorCoeff * float64(bits) * float64(bits)
	if ste <= 0 {
		return 1
	}
	n := int(c.CapacitySTE / ste)
	if n < 1 {
		n = 1
	}
	return n
}

// Configurations returns how many board loads a database of n vectors
// needs.
func (c Config) Configurations(n, bits int) int {
	per := c.VectorsPerConfig(bits)
	return (n + per - 1) / per
}

// StreamSecondsPerQuery returns the time to stream one bits-wide query
// through a loaded configuration.
func (c Config) StreamSecondsPerQuery(bits int) float64 {
	symbols := math.Ceil(float64(bits) / 8)
	return symbols / c.SymbolRate
}

// BatchQPS returns sustained queries/second for linear Hamming kNN
// over n bits-wide vectors when queries are batched batch at a time
// (the reconfiguration sweep is amortized across the batch, as in the
// paper's 1000-query evaluation sets).
func (c Config) BatchQPS(n, bits, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	configs := float64(c.Configurations(n, bits))
	total := configs * (c.ReconfigSeconds + float64(batch)*c.StreamSecondsPerQuery(bits))
	return float64(batch) / total
}

// QPS is BatchQPS with the paper's 1000-query batches.
func (c Config) QPS(n, bits int) float64 {
	return c.BatchQPS(n, bits, 1000)
}
