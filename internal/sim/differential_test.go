package sim

// Differential test: random straight-line scalar programs executed on
// the cycle simulator are checked against an independently written
// reference evaluator. The reference deliberately re-derives the ISA
// semantics from Table II's conventional meanings rather than calling
// into the simulator's ALU helpers.

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"ssam/internal/isa"
)

// refEval executes a straight-line scalar program (no branches, no
// memory) over the register file.
func refEval(prog []isa.Inst, regs *[32]int32) {
	for _, in := range prog {
		a, b := regs[in.Rs1], regs[in.Rs2]
		switch in.Op {
		case isa.ADD:
			regs[in.Rd] = a + b
		case isa.SUB:
			regs[in.Rd] = a - b
		case isa.MULT:
			regs[in.Rd] = a * b
		case isa.OR:
			regs[in.Rd] = a | b
		case isa.AND:
			regs[in.Rd] = a & b
		case isa.XOR:
			regs[in.Rd] = a ^ b
		case isa.NOT:
			regs[in.Rd] = ^a
		case isa.POPCOUNT:
			regs[in.Rd] = int32(bits.OnesCount32(uint32(a)))
		case isa.FXP:
			regs[in.Rd] += int32(bits.OnesCount32(uint32(a ^ b)))
		case isa.ADDI:
			regs[in.Rd] = a + in.Imm
		case isa.SUBI:
			regs[in.Rd] = a - in.Imm
		case isa.MULTI:
			regs[in.Rd] = a * in.Imm
		case isa.ANDI:
			regs[in.Rd] = a & in.Imm
		case isa.ORI:
			regs[in.Rd] = a | in.Imm
		case isa.XORI:
			regs[in.Rd] = a ^ in.Imm
		case isa.SL:
			regs[in.Rd] = a << (uint32(in.Imm) % 32)
		case isa.SR:
			regs[in.Rd] = int32(uint32(a) >> (uint32(in.Imm) % 32))
		case isa.SRA:
			regs[in.Rd] = a >> (uint32(in.Imm) % 32)
		}
	}
}

var straightLineOps = []isa.Op{
	isa.ADD, isa.SUB, isa.MULT, isa.OR, isa.AND, isa.XOR, isa.NOT,
	isa.POPCOUNT, isa.FXP, isa.ADDI, isa.SUBI, isa.MULTI, isa.ANDI,
	isa.ORI, isa.XORI, isa.SL, isa.SR, isa.SRA,
}

func TestScalarALUDifferentialQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		prog := make([]isa.Inst, 0, n+1)
		for i := 0; i < n; i++ {
			op := straightLineOps[rng.Intn(len(straightLineOps))]
			in := isa.Inst{
				Op:  op,
				Rd:  uint8(rng.Intn(32)),
				Rs1: uint8(rng.Intn(32)),
				Rs2: uint8(rng.Intn(32)),
			}
			if op.HasImmediate() {
				switch op {
				case isa.SL, isa.SR, isa.SRA:
					in.Imm = int32(rng.Intn(32))
				default:
					in.Imm = rng.Int31() - 1<<30
				}
			}
			prog = append(prog, in)
		}
		prog = append(prog, isa.Inst{Op: isa.HALT})

		// Seed both machines with the same random registers by
		// prepending immediate loads.
		var want [32]int32
		init := make([]isa.Inst, 0, 64)
		for r := 0; r < 32; r++ {
			v := rng.Int31() - 1<<30
			want[r] = v
			init = append(init,
				isa.Inst{Op: isa.XOR, Rd: uint8(r), Rs1: uint8(r), Rs2: uint8(r)},
				isa.Inst{Op: isa.ADDI, Rd: uint8(r), Rs1: uint8(r), Imm: v},
			)
		}
		full := append(init, prog...)

		pu := New(DefaultConfig(2), nil)
		if err := pu.Run(full); err != nil {
			t.Logf("sim error: %v", err)
			return false
		}
		refEval(prog[:len(prog)-1], &want)
		for r := 0; r < 32; r++ {
			if pu.S[r] != want[r] {
				t.Logf("seed %d: s%d = %d, reference %d", seed, r, pu.S[r], want[r])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorScalarLaneEquivalence: a vector op must equal the scalar
// op applied lane-wise.
func TestVectorScalarLaneEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vlen := 8
	for trial := 0; trial < 100; trial++ {
		op := straightLineOps[rng.Intn(len(straightLineOps))]
		if !op.VectorCapable() {
			continue
		}
		a := make([]int32, vlen)
		b := make([]int32, vlen)
		d := make([]int32, vlen)
		for l := range a {
			a[l] = rng.Int31() - 1<<30
			b[l] = rng.Int31() - 1<<30
			d[l] = rng.Int31() - 1<<30
		}
		imm := int32(rng.Intn(31))

		pu := New(DefaultConfig(vlen), nil)
		copy(pu.V[0], a)
		copy(pu.V[1], b)
		copy(pu.V[2], d)
		in := isa.Inst{Op: op, Vector: true, Rd: 2, Rs1: 0, Rs2: 1, Imm: imm}
		if err := pu.Run([]isa.Inst{in, {Op: isa.HALT}}); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < vlen; l++ {
			var want [32]int32
			want[0], want[1], want[2] = a[l], b[l], d[l]
			refEval([]isa.Inst{{Op: op, Rd: 2, Rs1: 0, Rs2: 1, Imm: imm}}, &want)
			if pu.V[2][l] != want[2] {
				t.Fatalf("%s lane %d: vector %d, scalar %d", op, l, pu.V[2][l], want[2])
			}
		}
	}
}
