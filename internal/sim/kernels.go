package sim

// Kernel generation: the paper's benchmarks are handwritten assembly
// programs per configuration ("Each benchmark is handwritten using our
// instruction set defined in Table II"). This file is the kernel
// writer: it emits assembler source for the linear-scan distance
// kernels at a given dimensionality, database size and vector length.
//
// Device ABI: the query occupies scratchpad words [0, paddedDims); the
// database is at DRAMBase with paddedDims words per vector (zero
// padded so every vector is a whole number of VectorLen chunks); the
// kernel leaves the top-k (id, score) pairs in the hardware priority
// queue, smaller scores closer.
//
// Register use: s0 is kept zero; s1 DRAM cursor; s2 id; s3 nvec;
// s4 chunk counter; s5 chunks/vector; s6 query cursor; s7..s9
// reduction temps; s10.. division/sqrt temps in the cosine fixup.

import (
	"fmt"
	"strings"
)

// PadDims rounds dims up to a whole number of vector chunks.
func PadDims(dims, vlen int) int {
	return (dims + vlen - 1) / vlen * vlen
}

// HammingWords returns the packed word count for dims bits.
func HammingWords(dims int) int { return (dims + 31) / 32 }

// DeviceShift picks the fixed-point fraction bits for on-device data
// so a squared-L2 accumulation over dim dimensions of values in
// roughly [-16, 16] cannot overflow a 32-bit lane:
// dim * (16 * 2^f)^2 <= 2^31.
func DeviceShift(dim int) int {
	lg := 0
	for 1<<lg < dim {
		lg++
	}
	f := (23 - lg) / 2
	if f < 4 {
		f = 4
	}
	if f > 12 {
		f = 12
	}
	return f
}

// QuantizeDevice converts a float vector to device fixed point with
// the given fraction shift, saturating at int32 range.
func QuantizeDevice(v []float32, shift int) []int32 {
	out := make([]int32, len(v))
	scale := float64(int64(1) << uint(shift))
	for i, x := range v {
		f := float64(x) * scale
		switch {
		case f >= 2147483647:
			out[i] = 2147483647
		case f <= -2147483648:
			out[i] = -2147483648
		case f >= 0:
			out[i] = int32(f + 0.5)
		default:
			out[i] = int32(f - 0.5)
		}
	}
	return out
}

type kernelWriter struct {
	b strings.Builder
}

func (w *kernelWriter) line(format string, args ...interface{}) {
	fmt.Fprintf(&w.b, format+"\n", args...)
}

// prologue emits the outer-loop setup shared by all linear kernels.
func (w *kernelWriter) prologue(nvec, wordsPerVec int) {
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s2, s2, s2            ; id = 0")
	w.line("\tADDI s3, s0, %d           ; nvec", nvec)
	w.line("\tADDI s1, s0, %d           ; DRAM cursor", DRAMBase)
	w.line("outer:")
	w.line("\tMEM_FETCH s1, %d", wordsPerVec)
}

// innerLoopHead emits per-vector chunk-loop setup.
func (w *kernelWriter) innerLoopHead(chunks int) {
	w.line("\tXOR s4, s4, s4            ; chunk = 0")
	w.line("\tADDI s5, s0, %d           ; chunks per vector", chunks)
	w.line("\tXOR s6, s6, s6            ; query cursor")
	w.line("inner:")
	w.line("\tVLOAD v0, s6, 0           ; query chunk (scratchpad)")
	w.line("\tVLOAD v1, s1, 0           ; database chunk (DRAM)")
}

// innerLoopTail advances cursors and loops.
func (w *kernelWriter) innerLoopTail(vlen int) {
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s1, s1, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, inner")
}

// reduce sums vector register v into scalar s7 using VSMOVE/ADD.
func (w *kernelWriter) reduce(vreg string, dst string, vlen int) {
	w.line("\tXOR %s, %s, %s", dst, dst, dst)
	for l := 0; l < vlen; l++ {
		w.line("\tVSMOVE s9, %s, %d", vreg, l)
		w.line("\tADD %s, %s, s9", dst, dst)
	}
}

// epilogue inserts the score and loops over vectors.
func (w *kernelWriter) epilogue(scoreReg string) {
	w.line("\tPQUEUE_INSERT s2, %s", scoreReg)
	w.line("\tADDI s2, s2, 1")
	w.line("\tBLT s2, s3, outer")
	w.line("\tHALT")
}

// EuclideanKernel emits a squared-L2 linear-scan kernel.
func EuclideanKernel(dims, nvec, vlen int) string {
	padded := PadDims(dims, vlen)
	chunks := padded / vlen
	var w kernelWriter
	w.line("; squared-Euclidean linear kNN kernel: dims=%d (padded %d), nvec=%d, VL=%d", dims, padded, nvec, vlen)
	w.prologue(nvec, padded)
	w.line("\tVXOR v3, v3, v3           ; acc = 0")
	w.innerLoopHead(chunks)
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.innerLoopTail(vlen)
	w.reduce("v3", "s7", vlen)
	w.epilogue("s7")
	return w.b.String()
}

// ManhattanKernel emits an L1 linear-scan kernel. Lane absolute value
// uses the shift/xor/subtract identity |x| = (x ^ (x>>31)) - (x>>31).
func ManhattanKernel(dims, nvec, vlen int) string {
	padded := PadDims(dims, vlen)
	chunks := padded / vlen
	var w kernelWriter
	w.line("; Manhattan linear kNN kernel: dims=%d (padded %d), nvec=%d, VL=%d", dims, padded, nvec, vlen)
	w.prologue(nvec, padded)
	w.line("\tVXOR v3, v3, v3")
	w.innerLoopHead(chunks)
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVSRA v4, v2, 31")
	w.line("\tVXOR v2, v2, v4")
	w.line("\tVSUB v2, v2, v4")
	w.line("\tVADD v3, v3, v2")
	w.innerLoopTail(vlen)
	w.reduce("v3", "s7", vlen)
	w.epilogue("s7")
	return w.b.String()
}

// HammingKernel emits a Hamming linear-scan kernel over bit-packed
// vectors (words 32-bit dims each) using the fused xor-popcount VFXP
// unit. wordsPerVec is the packed (unpadded) word count.
func HammingKernel(wordsPerVec, nvec, vlen int) string {
	padded := PadDims(wordsPerVec, vlen)
	chunks := padded / vlen
	var w kernelWriter
	w.line("; Hamming linear kNN kernel: words=%d (padded %d), nvec=%d, VL=%d", wordsPerVec, padded, nvec, vlen)
	w.prologue(nvec, padded)
	w.line("\tVXOR v3, v3, v3")
	w.innerLoopHead(chunks)
	w.line("\tVFXP v3, v0, v1           ; acc += popcount(q ^ b) per lane")
	w.innerLoopTail(vlen)
	w.reduce("v3", "s7", vlen)
	w.epilogue("s7")
	return w.b.String()
}

// CosineKernel emits a cosine-similarity linear-scan kernel: it
// accumulates dot(q,b), |q|^2 and |b|^2 per vector, then runs the
// paper's software fixed-point fixup ("fixed-point division for cosine
// similarity is performed in software using shifts and subtracts"):
// an unrolled integer square root of |b|^2 followed by an unrolled
// restoring division, scoring -(dot/sqrt(|b|^2)) so smaller is closer.
func CosineKernel(dims, nvec, vlen int) string {
	padded := PadDims(dims, vlen)
	chunks := padded / vlen
	var w kernelWriter
	w.line("; cosine linear kNN kernel: dims=%d (padded %d), nvec=%d, VL=%d", dims, padded, nvec, vlen)
	w.prologue(nvec, padded)
	w.line("\tVXOR v3, v3, v3           ; dot")
	w.line("\tVXOR v4, v4, v4           ; |q|^2")
	w.line("\tVXOR v5, v5, v5           ; |b|^2")
	w.innerLoopHead(chunks)
	w.line("\tVMULT v2, v0, v1")
	w.line("\tVADD v3, v3, v2")
	w.line("\tVMULT v2, v0, v0")
	w.line("\tVADD v4, v4, v2")
	w.line("\tVMULT v2, v1, v1")
	w.line("\tVADD v5, v5, v2")
	w.innerLoopTail(vlen)
	w.reduce("v3", "s7", vlen)  // dot
	w.reduce("v4", "s8", vlen)  // |q|^2 (kept to match the paper's term count)
	w.reduce("v5", "s10", vlen) // |b|^2

	// |dot|: s11 = |s7|, remember sign in s12 (s7 >> 31).
	w.line("\tSRA s12, s7, 31")
	w.line("\tXOR s11, s7, s12")
	w.line("\tSUB s11, s11, s12")

	// Integer sqrt of s13 = |b|^2, 16 unrolled iterations; result in
	// s14 = floor(sqrt(|b|^2)).
	w.line("\tADD s13, s10, s0")
	w.line("\tXOR s14, s14, s14")
	for i := 0; i < 16; i++ {
		one := int32(1) << uint(30-2*i)
		w.line("\tADDI s15, s14, %d", one)
		w.line("\tBLT s13, s15, sq_skip%d", i)
		w.line("\tSUB s13, s13, s15")
		w.line("\tSRA s14, s14, 1")
		w.line("\tADDI s14, s14, %d", one)
		w.line("\tJ sq_next%d", i)
		w.line("sq_skip%d:", i)
		w.line("\tSRA s14, s14, 1")
		w.line("sq_next%d:", i)
	}
	// Guard divisor >= 1.
	w.line("\tBGT s14, s0, div_ok")
	w.line("\tADDI s14, s0, 1")
	w.line("div_ok:")

	// Restoring division: s16 = |dot| / sqrt(|b|^2), 31 unrolled
	// iterations of shift-compare-subtract ("fixed-point division ...
	// performed in software using shifts and subtracts").
	w.line("\tADD s17, s11, s0          ; dividend")
	w.line("\tXOR s18, s18, s18         ; remainder")
	w.line("\tXOR s16, s16, s16         ; quotient")
	for i := 30; i >= 0; i-- {
		w.line("\tSR s19, s17, %d", i)
		w.line("\tANDI s19, s19, 1")
		w.line("\tSL s18, s18, 1")
		w.line("\tADD s18, s18, s19")
		w.line("\tBLT s18, s14, dv_skip%d", i)
		w.line("\tSUB s18, s18, s14")
		w.line("\tADDI s16, s16, %d", int32(1)<<uint(i))
		w.line("dv_skip%d:", i)
	}
	// Apply sign: score = -quotient if dot >= 0 else +quotient.
	w.line("\tBLT s7, s0, cos_neg")
	w.line("\tSUB s16, s0, s16")
	w.line("cos_neg:")
	w.epilogue("s16")
	return w.b.String()
}
