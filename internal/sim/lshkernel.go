package sim

// Hyperplane LSH kernel. Section III-D: "Any large data structures
// such as hash function weights in MPLSH ... are stored in SSAM memory
// since they are larger and experience limited reuse." The kernel
// hashes the scratchpad-resident query against DRAM-resident
// hyperplanes with the vector unit, looks up the matching bucket of
// each table, and scans the bucket's rows through the distance
// pipeline (rows are reached indirectly through per-table entry
// lists, since only one table's buckets can be contiguous).
//
// This is single-probe per table; the multi-probe perturbation
// sequence of full MPLSH is a host-side concern in this codebase (the
// host can issue one kernel run per probe).

import "fmt"

// LSHLayout describes the per-PU DRAM image the kernel expects, as
// word offsets from DRAMBase:
//
//	[0, N*Padded)              database rows (original order)
//	[Planes, ...)              Tables*Bits hyperplanes, Padded words each
//	[Offsets, ...)             per table: 2^Bits+1 bucket offsets
//	[Entries, ...)             per table: N row indices grouped by bucket
type LSHLayout struct {
	N       int
	Padded  int
	Tables  int
	Bits    int
	Planes  int
	Offsets int
	Entries int
	Total   int // total words
}

// NewLSHLayout computes the layout.
func NewLSHLayout(n, padded, tables, bits int) LSHLayout {
	l := LSHLayout{N: n, Padded: padded, Tables: tables, Bits: bits}
	l.Planes = n * padded
	l.Offsets = l.Planes + tables*bits*padded
	l.Entries = l.Offsets + tables*((1<<bits)+1)
	l.Total = l.Entries + tables*n
	return l
}

// LSHKernel emits the hash-and-scan kernel for the layout with one
// probe per table (the query's own bucket). The kernel inserts
// (rowIndex, distance) pairs into the priority queue; rows scanned by
// several tables are inserted more than once and the host
// deduplicates.
func LSHKernel(dims, vlen int, lay LSHLayout) string {
	return lshKernel(dims, vlen, lay, false)
}

// MPLSHKernel is LSHKernel with static multi-probing: after the base
// bucket, the kernel also scans every single-bit perturbation of the
// hash code ("MPLSH applies small perturbations to the hash result to
// create additional probes into the same hash table"), Bits extra
// probes per table. Unlike the margin-ordered probe sequence of full
// multi-probe LSH, the flips are static, which keeps the probe
// schedule query-independent and entirely on-device.
func MPLSHKernel(dims, vlen int, lay LSHLayout) string {
	return lshKernel(dims, vlen, lay, true)
}

func lshKernel(dims, vlen int, lay LSHLayout, multiProbe bool) string {
	padded := lay.Padded
	if padded != PadDims(dims, vlen) {
		panic(fmt.Sprintf("sim: layout padded %d != %d", padded, PadDims(dims, vlen)))
	}
	chunks := padded / vlen
	var w kernelWriter
	w.line("; hyperplane LSH kernel: dims=%d (padded %d), VL=%d, tables=%d, bits=%d",
		dims, padded, vlen, lay.Tables, lay.Bits)
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s1, s1, s1            ; table")
	w.line("\tADDI s2, s0, %d           ; tables", lay.Tables)
	w.line("tloop:")
	w.line("\tMULTI s3, s1, %d", lay.Bits*padded)
	w.line("\tADDI s3, s3, %d           ; plane cursor", DRAMBase+lay.Planes)
	w.line("\tXOR s8, s8, s8            ; hash code")
	for b := 0; b < lay.Bits; b++ {
		w.line("\tMEM_FETCH s3, %d", padded)
		w.line("\tVXOR v3, v3, v3")
		w.line("\tXOR s4, s4, s4")
		w.line("\tADDI s5, s0, %d", chunks)
		w.line("\tXOR s6, s6, s6")
		w.line("hinner%d:", b)
		w.line("\tVLOAD v0, s6, 0           ; query chunk")
		w.line("\tVLOAD v1, s3, 0           ; hyperplane chunk (DRAM)")
		w.line("\tVMULT v2, v0, v1")
		w.line("\tVADD v3, v3, v2")
		w.line("\tADDI s6, s6, %d", vlen)
		w.line("\tADDI s3, s3, %d", vlen)
		w.line("\tADDI s4, s4, 1")
		w.line("\tBLT s4, s5, hinner%d", b)
		w.reduce("v3", "s7", vlen)
		w.line("\tBLT s7, s0, hskip%d", b)
		w.line("\tORI s8, s8, %d", int32(1)<<uint(b))
		w.line("hskip%d:", b)
	}
	// Bucket bounds bases for this table.
	w.line("\tMULTI s11, s1, %d", (1<<lay.Bits)+1)
	w.line("\tADDI s11, s11, %d         ; offsets base", DRAMBase+lay.Offsets)
	w.line("\tMULTI s14, s1, %d", lay.N)
	w.line("\tADDI s14, s14, %d         ; entries base", DRAMBase+lay.Entries)

	// Probe schedule: the base code, plus (with multiProbe) each
	// single-bit flip of it.
	w.line("\tADD s20, s8, s0           ; probe 0 = base code")
	emitBucketScan(&w, "p0", padded, chunks, vlen)
	if multiProbe {
		for b := 0; b < lay.Bits; b++ {
			w.line("\tXORI s20, s8, %d          ; flip bit %d", int32(1)<<uint(b), b)
			emitBucketScan(&w, fmt.Sprintf("p%d", b+1), padded, chunks, vlen)
		}
	}
	w.line("\tADDI s1, s1, 1")
	w.line("\tBLT s1, s2, tloop")
	w.line("\tHALT")
	return w.b.String()
}

// emitBucketScan emits a scan of bucket s20 of the current table
// (offsets base s11, entries base s14), unique labels suffixed by tag.
func emitBucketScan(w *kernelWriter, tag string, padded, chunks, vlen int) {
	w.line("\tADD s18, s11, s20")
	w.line("\tLOAD s12, s18, 0          ; bucket start")
	w.line("\tLOAD s13, s18, 1          ; bucket end")
	w.line("\tADD s15, s14, s12         ; entry cursor")
	w.line("\tADD s16, s14, s13         ; entry end")
	w.line("eloop%s:", tag)
	w.line("\tBLT s15, s16, edo%s", tag)
	w.line("\tJ enext%s", tag)
	w.line("edo%s:", tag)
	w.line("\tLOAD s19, s15, 0          ; row index")
	w.line("\tMULTI s17, s19, %d", padded)
	w.line("\tADDI s17, s17, %d", DRAMBase)
	w.line("\tMEM_FETCH s17, %d", padded)
	w.line("\tVXOR v3, v3, v3")
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("\tXOR s6, s6, s6")
	w.line("einner%s:", tag)
	w.line("\tVLOAD v0, s6, 0")
	w.line("\tVLOAD v1, s17, 0")
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s17, s17, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, einner%s", tag)
	w.reduce("v3", "s7", vlen)
	w.line("\tPQUEUE_INSERT s19, s7")
	w.line("\tADDI s15, s15, 1")
	w.line("\tJ eloop%s", tag)
	w.line("enext%s:", tag)
}
