// Package sim is the cycle-level functional simulator for one SSAM
// processing unit (Section III-C): a single-issue, in-order,
// fully-integrated scalar/vector core with 32 scalar registers, 8
// vector registers of configurable length (2/4/8/16 lanes of 32 bits),
// a 32 KB scratchpad, a hardware stack unit, a 16-entry (chainable)
// shift-register priority queue, and a MEM_FETCH stream prefetcher.
//
// Timing model: one instruction issues per cycle; vector operations
// complete in one issue slot (the vector ALU is VectorLen lanes wide
// and chaining forwards results between pipeline stages, per the
// paper). Memory operations to the scratchpad cost one cycle; accesses
// to the PU's DRAM shard are charged against the PU's share of its
// vault-controller bandwidth, plus an access latency when the touched
// words were not covered by a MEM_FETCH prefetch window. This matches
// the paper's design point, where kNN kernels stream large contiguous
// blocks and the accelerator is provisioned so compute keeps up with
// the vault bandwidth.
package sim

import (
	"fmt"
	"io"
	"math/bits"

	"ssam/internal/isa"
	"ssam/internal/topk"
)

// DRAMBase is the word address where the PU's DRAM shard is mapped.
// Addresses below ScratchWords hit the scratchpad.
const DRAMBase = 0x0100_0000

// Config sets a processing unit's microarchitectural parameters.
type Config struct {
	// VectorLen is the vector register length in 32-bit lanes; the
	// paper sweeps 2, 4, 8, 16.
	VectorLen int
	// ClockHz is the post-place-and-route clock (1 GHz nominal).
	ClockHz float64
	// ScratchWords is scratchpad capacity in 32-bit words (32 KB = 8192).
	ScratchWords int
	// QueueDepth is the priority-queue depth; multiples of 16 model
	// chained stages for larger k.
	QueueDepth int
	// MemBytesPerCycle is this PU's share of vault bandwidth, in bytes
	// per clock cycle.
	MemBytesPerCycle float64
	// MemLatencyCycles is charged on DRAM accesses outside the current
	// prefetch window.
	MemLatencyCycles uint64
	// SoftwareQueue replaces the hardware priority queue's single-cycle
	// insert with the modeled cost of a software insert (the Section
	// V-B ablation).
	SoftwareQueue bool
	// StackDepth is the hardware stack capacity.
	StackDepth int
	// MaxCycles aborts runaway programs.
	MaxCycles uint64
}

// DefaultConfig returns the paper's nominal PU at the given vector
// length: 1 GHz, 32 KB scratchpad, 16-entry queue, a full 10 GB/s
// vault share (10 bytes/cycle), and 40-cycle uncovered DRAM latency.
func DefaultConfig(vlen int) Config {
	return Config{
		VectorLen:        vlen,
		ClockHz:          1e9,
		ScratchWords:     8192,
		QueueDepth:       16,
		MemBytesPerCycle: 10,
		MemLatencyCycles: 40,
		StackDepth:       64,
		MaxCycles:        4e9,
	}
}

// Stats aggregates execution counters.
type Stats struct {
	Cycles        uint64 // total cycles including stalls
	Instructions  uint64
	VectorInsts   uint64
	ScalarInsts   uint64
	MemStall      uint64 // cycles lost to bandwidth and latency
	DRAMBytesRead uint64
	PQInserts     uint64
	// OpCounts is the per-opcode retirement histogram — the
	// simulator's native version of the paper's Pin instruction-mix
	// methodology.
	OpCounts [isa.NumOps]uint64
}

// MemoryReadPct returns the percentage of retired instructions that
// read memory (LOAD plus prefetches do the reading here; scratchpad
// and DRAM are not distinguished).
func (s Stats) MemoryReadPct() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 100 * float64(s.OpCounts[isa.LOAD]) / float64(s.Instructions)
}

// VectorPct returns the percentage of retired instructions that were
// vector-form.
func (s Stats) VectorPct() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 100 * float64(s.VectorInsts) / float64(s.Instructions)
}

// Seconds converts cycles to wall-clock time at the configured clock.
func (s Stats) Seconds(clockHz float64) float64 {
	return float64(s.Cycles) / clockHz
}

// PU is one processing unit instance.
type PU struct {
	cfg     Config
	S       [isa.NumScalarRegs]int32
	V       [isa.NumVectorRegs][]int32
	scratch []int32
	dram    []int32
	Queue   *topk.ShiftRegisterQueue
	stack   []int32
	stats   Stats

	prefetchLo, prefetchHi int64 // word-address window set by MEM_FETCH

	// Trace, when non-nil, receives one line per retired instruction:
	// "cycle pc instruction". Tracing is for kernel bring-up and slows
	// simulation substantially.
	Trace io.Writer
}

// New creates a PU over the given DRAM shard (word-addressed at
// DRAMBase). The shard is shared, not copied.
func New(cfg Config, dram []int32) *PU {
	if cfg.VectorLen <= 0 {
		panic("sim: VectorLen must be positive")
	}
	if cfg.ScratchWords <= 0 {
		cfg.ScratchWords = 8192
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.StackDepth <= 0 {
		cfg.StackDepth = 64
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4e9
	}
	if cfg.MemBytesPerCycle <= 0 {
		cfg.MemBytesPerCycle = 10
	}
	p := &PU{
		cfg:     cfg,
		scratch: make([]int32, cfg.ScratchWords),
		dram:    dram,
		Queue:   topk.NewShiftRegisterQueue(cfg.QueueDepth),
		stack:   make([]int32, 0, cfg.StackDepth),
	}
	for i := range p.V {
		p.V[i] = make([]int32, cfg.VectorLen)
	}
	return p
}

// Config returns the PU's configuration.
func (p *PU) Config() Config { return p.cfg }

// Stats returns cumulative execution counters.
func (p *PU) Stats() Stats { return p.stats }

// WriteScratch copies words into the scratchpad at the given word
// offset (how the device writes the query vector before a kernel run).
func (p *PU) WriteScratch(offset int, words []int32) error {
	if offset < 0 || offset+len(words) > len(p.scratch) {
		return fmt.Errorf("sim: scratchpad write [%d,%d) out of range", offset, offset+len(words))
	}
	copy(p.scratch[offset:], words)
	return nil
}

// ReadScratch copies n words out of the scratchpad starting at the
// given word offset (how the device reads back accumulator regions
// left by index-construction kernels).
func (p *PU) ReadScratch(offset, n int) ([]int32, error) {
	if offset < 0 || n < 0 || offset+n > len(p.scratch) {
		return nil, fmt.Errorf("sim: scratchpad read [%d,%d) out of range", offset, offset+n)
	}
	out := make([]int32, n)
	copy(out, p.scratch[offset:offset+n])
	return out, nil
}

// ReadDRAM copies n words from the PU's DRAM shard starting at the
// given shard-local word offset.
func (p *PU) ReadDRAM(offset, n int) ([]int32, error) {
	if offset < 0 || n < 0 || offset+n > len(p.dram) {
		return nil, fmt.Errorf("sim: dram read [%d,%d) out of range", offset, offset+n)
	}
	out := make([]int32, n)
	copy(out, p.dram[offset:offset+n])
	return out, nil
}

// ResetForQuery clears architectural state between kernel runs but
// keeps the scratchpad (holding index structures) and cumulative
// stats.
func (p *PU) ResetForQuery() {
	p.S = [isa.NumScalarRegs]int32{}
	for i := range p.V {
		for l := range p.V[i] {
			p.V[i][l] = 0
		}
	}
	p.stack = p.stack[:0]
	p.Queue = topk.NewShiftRegisterQueue(p.cfg.QueueDepth)
	p.prefetchLo, p.prefetchHi = 0, 0
}

// Results drains the priority queue as (id, distance) pairs.
func (p *PU) Results() []topk.Result { return p.Queue.Results() }

// Run executes the program from pc 0 until HALT. It returns an error
// on architectural faults (bad address, stack overflow, runaway).
func (p *PU) Run(prog []isa.Inst) error {
	start := p.stats.Cycles
	pc := int32(0)
	vl := p.cfg.VectorLen
	for {
		if p.stats.Cycles-start > p.cfg.MaxCycles {
			return fmt.Errorf("sim: exceeded MaxCycles=%d", p.cfg.MaxCycles)
		}
		if pc < 0 || int(pc) >= len(prog) {
			return fmt.Errorf("sim: pc %d out of program range [0,%d)", pc, len(prog))
		}
		in := prog[int(pc)]
		if p.Trace != nil {
			fmt.Fprintf(p.Trace, "%10d %5d  %s\n", p.stats.Cycles, pc, in)
		}
		pc++
		p.stats.Cycles++
		p.stats.Instructions++
		p.stats.OpCounts[in.Op]++
		if in.Vector {
			p.stats.VectorInsts++
		} else {
			p.stats.ScalarInsts++
		}

		switch in.Op {
		case isa.ADD, isa.SUB, isa.MULT, isa.OR, isa.AND, isa.XOR, isa.FXP:
			if in.Vector {
				d, a, b := p.V[in.Rd], p.V[in.Rs1], p.V[in.Rs2]
				for l := 0; l < vl; l++ {
					d[l] = scalarALU(in.Op, a[l], b[l], d[l])
				}
			} else {
				p.S[in.Rd] = scalarALU(in.Op, p.S[in.Rs1], p.S[in.Rs2], p.S[in.Rd])
			}
		case isa.NOT:
			if in.Vector {
				for l := 0; l < vl; l++ {
					p.V[in.Rd][l] = ^p.V[in.Rs1][l]
				}
			} else {
				p.S[in.Rd] = ^p.S[in.Rs1]
			}
		case isa.POPCOUNT:
			if in.Vector {
				for l := 0; l < vl; l++ {
					p.V[in.Rd][l] = int32(bits.OnesCount32(uint32(p.V[in.Rs1][l])))
				}
			} else {
				p.S[in.Rd] = int32(bits.OnesCount32(uint32(p.S[in.Rs1])))
			}
		case isa.ADDI, isa.SUBI, isa.MULTI, isa.ANDI, isa.ORI, isa.XORI,
			isa.SR, isa.SL, isa.SRA:
			if in.Vector {
				for l := 0; l < vl; l++ {
					p.V[in.Rd][l] = scalarImmALU(in.Op, p.V[in.Rs1][l], in.Imm)
				}
			} else {
				p.S[in.Rd] = scalarImmALU(in.Op, p.S[in.Rs1], in.Imm)
			}
		case isa.BNE:
			if p.S[in.Rs1] != p.S[in.Rs2] {
				pc = in.Imm
			}
		case isa.BGT:
			if p.S[in.Rs1] > p.S[in.Rs2] {
				pc = in.Imm
			}
		case isa.BLT:
			if p.S[in.Rs1] < p.S[in.Rs2] {
				pc = in.Imm
			}
		case isa.BE:
			if p.S[in.Rs1] == p.S[in.Rs2] {
				pc = in.Imm
			}
		case isa.J:
			pc = in.Imm
		case isa.PUSH:
			if len(p.stack) >= p.cfg.StackDepth {
				return fmt.Errorf("sim: stack overflow at pc %d", pc-1)
			}
			p.stack = append(p.stack, p.S[in.Rs1])
		case isa.POP:
			if len(p.stack) == 0 {
				return fmt.Errorf("sim: stack underflow at pc %d", pc-1)
			}
			p.S[in.Rd] = p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
		case isa.SVMOVE: // vd[lane] = s; lane < 0 broadcasts
			v := p.V[in.Rd]
			s := p.S[in.Rs1]
			if in.Imm < 0 {
				for l := 0; l < vl; l++ {
					v[l] = s
				}
			} else if int(in.Imm) < vl {
				v[in.Imm] = s
			} else {
				return fmt.Errorf("sim: SVMOVE lane %d out of range at pc %d", in.Imm, pc-1)
			}
		case isa.VSMOVE: // s = vs[lane]
			if int(in.Imm) >= vl || in.Imm < 0 {
				return fmt.Errorf("sim: VSMOVE lane %d out of range at pc %d", in.Imm, pc-1)
			}
			p.S[in.Rd] = p.V[in.Rs1][in.Imm]
		case isa.MEMFETCH:
			addr := int64(p.S[in.Rs1])
			p.prefetchLo, p.prefetchHi = addr, addr+int64(in.Imm)
		case isa.LOAD:
			addr := int64(p.S[in.Rs1]) + int64(in.Imm)
			if in.Vector {
				if err := p.loadWords(addr, p.V[in.Rd]); err != nil {
					return fmt.Errorf("sim: pc %d: %w", pc-1, err)
				}
			} else {
				var one [1]int32
				if err := p.loadWords(addr, one[:]); err != nil {
					return fmt.Errorf("sim: pc %d: %w", pc-1, err)
				}
				p.S[in.Rd] = one[0]
			}
		case isa.STORE:
			addr := int64(p.S[in.Rs1]) + int64(in.Imm)
			if in.Vector {
				if err := p.storeWords(addr, p.V[in.Rd]); err != nil {
					return fmt.Errorf("sim: pc %d: %w", pc-1, err)
				}
			} else {
				if err := p.storeWords(addr, []int32{p.S[in.Rd]}); err != nil {
					return fmt.Errorf("sim: pc %d: %w", pc-1, err)
				}
			}
		case isa.PQUEUEINSERT:
			p.stats.PQInserts++
			id, val := p.S[in.Rs1], int64(p.S[in.Rs2])
			if p.cfg.SoftwareQueue {
				// Model a software insert: the hardware queue still
				// tracks contents (for results), but the PU is charged
				// the instruction cost of the equivalent software
				// routine.
				admitted := true
				if p.Queue.Len() == p.Queue.Depth() {
					if _, worst, ok := p.Queue.Load(p.Queue.Depth() - 1); ok && val >= worst {
						admitted = false
					}
				}
				cost := topk.SoftwareQueueInsertCost(p.Queue.Depth(), admitted)
				p.stats.Cycles += uint64(cost - 1) // this issue slot counts as 1
				p.stats.Instructions += uint64(cost - 1)
				p.stats.ScalarInsts += uint64(cost - 1)
			}
			p.Queue.Insert(id, val)
		case isa.PQUEUELOAD:
			pos, field := int(in.Imm)>>1, in.Imm&1
			id, val, ok := p.Queue.Load(pos)
			if !ok {
				p.S[in.Rd] = -1
			} else if field == 0 {
				p.S[in.Rd] = id
			} else {
				p.S[in.Rd] = int32(val)
			}
		case isa.PQUEUERESET:
			p.Queue.Reset()
		case isa.HALT:
			return nil
		default:
			return fmt.Errorf("sim: unimplemented op %s at pc %d", in.Op, pc-1)
		}
	}
}

func scalarALU(op isa.Op, a, b, old int32) int32 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MULT:
		return a * b
	case isa.OR:
		return a | b
	case isa.AND:
		return a & b
	case isa.XOR:
		return a ^ b
	case isa.FXP:
		return old + int32(bits.OnesCount32(uint32(a^b)))
	}
	panic("sim: bad ALU op")
}

func scalarImmALU(op isa.Op, a, imm int32) int32 {
	switch op {
	case isa.ADDI:
		return a + imm
	case isa.SUBI:
		return a - imm
	case isa.MULTI:
		return a * imm
	case isa.ANDI:
		return a & imm
	case isa.ORI:
		return a | imm
	case isa.XORI:
		return a ^ imm
	case isa.SR:
		return int32(uint32(a) >> (uint32(imm) & 31))
	case isa.SL:
		return a << (uint32(imm) & 31)
	case isa.SRA:
		return a >> (uint32(imm) & 31)
	}
	panic("sim: bad imm ALU op")
}

// loadWords reads len(dst) consecutive words starting at addr and
// charges memory timing.
func (p *PU) loadWords(addr int64, dst []int32) error {
	n := int64(len(dst))
	if addr >= 0 && addr+n <= int64(len(p.scratch)) {
		copy(dst, p.scratch[addr:addr+n])
		return nil // scratchpad: single-cycle, already charged
	}
	if addr >= DRAMBase && addr+n <= DRAMBase+int64(len(p.dram)) {
		copy(dst, p.dram[addr-DRAMBase:addr-DRAMBase+n])
		p.chargeDRAM(addr, n)
		return nil
	}
	return fmt.Errorf("load [%d,%d) out of range", addr, addr+n)
}

func (p *PU) storeWords(addr int64, src []int32) error {
	n := int64(len(src))
	if addr >= 0 && addr+n <= int64(len(p.scratch)) {
		copy(p.scratch[addr:addr+n], src)
		return nil
	}
	if addr >= DRAMBase && addr+n <= DRAMBase+int64(len(p.dram)) {
		copy(p.dram[addr-DRAMBase:addr-DRAMBase+n], src)
		p.chargeDRAM(addr, n)
		return nil
	}
	return fmt.Errorf("store [%d,%d) out of range", addr, addr+n)
}

// chargeDRAM applies the bandwidth (and, outside the prefetch window,
// latency) cost of touching n words at addr.
func (p *PU) chargeDRAM(addr, n int64) {
	bytes := uint64(n) * 4
	p.stats.DRAMBytesRead += bytes
	bwCycles := uint64(float64(bytes) / p.cfg.MemBytesPerCycle)
	if bwCycles > 0 {
		// The issue cycle already counted one cycle of transfer.
		p.stats.Cycles += bwCycles - 1
		p.stats.MemStall += bwCycles - 1
	}
	if addr < p.prefetchLo || addr+n > p.prefetchHi {
		p.stats.Cycles += p.cfg.MemLatencyCycles
		p.stats.MemStall += p.cfg.MemLatencyCycles
	}
}
