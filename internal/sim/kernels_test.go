package sim

import (
	"math/rand"
	"testing"

	"ssam/internal/asm"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

// buildLinearFixture quantizes a random float database and query to
// device fixed point and lays them out per the kernel ABI.
func buildLinearFixture(t *testing.T, n, dims, vlen int, seed int64) (dram []int32, query []int32, data []float32, q []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data = make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	q = make([]float32, dims)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	shift := DeviceShift(dims)
	padded := PadDims(dims, vlen)
	dram = make([]int32, n*padded)
	for i := 0; i < n; i++ {
		qv := QuantizeDevice(data[i*dims:(i+1)*dims], shift)
		copy(dram[i*padded:], qv)
	}
	query = make([]int32, padded)
	copy(query, QuantizeDevice(q, shift))
	return dram, query, data, q
}

func runKernel(t *testing.T, src string, dram, query []int32, vlen int) *PU {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble kernel: %v", err)
	}
	p := New(DefaultConfig(vlen), dram)
	if err := p.WriteScratch(0, query); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(prog); err != nil {
		t.Fatalf("run kernel: %v", err)
	}
	return p
}

func hostTopK(data []float32, dims, k int, q []float32, metric vec.Metric) []topk.Result {
	sel := topk.New(k)
	for i := 0; i < len(data)/dims; i++ {
		sel.Push(i, vec.Distance(metric, q, data[i*dims:(i+1)*dims]))
	}
	return sel.Results()
}

func idSet(rs []topk.Result) map[int]bool {
	m := make(map[int]bool, len(rs))
	for _, r := range rs {
		m[r.ID] = true
	}
	return m
}

func overlap(a, b []topk.Result) int {
	bs := idSet(b)
	n := 0
	for _, r := range a {
		if bs[r.ID] {
			n++
		}
	}
	return n
}

func TestEuclideanKernelMatchesHost(t *testing.T) {
	for _, vlen := range []int{2, 4, 8, 16} {
		n, dims := 150, 25 // dims deliberately not a multiple of vlen
		dram, query, data, q := buildLinearFixture(t, n, dims, vlen, int64(vlen))
		src := EuclideanKernel(dims, n, vlen)
		p := runKernel(t, src, dram, query, vlen)
		got := p.Results()[:10]
		want := hostTopK(data, dims, 10, q, vec.Euclidean)
		if ov := overlap(got, want); ov < 9 {
			t.Errorf("VL=%d: device/host top-10 overlap = %d/10", vlen, ov)
		}
		// The very nearest neighbor must agree.
		if got[0].ID != want[0].ID {
			t.Errorf("VL=%d: nearest id %d, host says %d", vlen, got[0].ID, want[0].ID)
		}
	}
}

func TestManhattanKernelMatchesHost(t *testing.T) {
	n, dims, vlen := 150, 30, 4
	dram, query, data, q := buildLinearFixture(t, n, dims, vlen, 99)
	p := runKernel(t, ManhattanKernel(dims, n, vlen), dram, query, vlen)
	got := p.Results()[:10]
	want := hostTopK(data, dims, 10, q, vec.Manhattan)
	if ov := overlap(got, want); ov < 9 {
		t.Errorf("manhattan overlap = %d/10", ov)
	}
}

func TestCosineKernelMatchesHost(t *testing.T) {
	n, dims, vlen := 150, 32, 4
	dram, query, data, q := buildLinearFixture(t, n, dims, vlen, 123)
	p := runKernel(t, CosineKernel(dims, n, vlen), dram, query, vlen)
	got := p.Results()[:10]
	want := hostTopK(data, dims, 10, q, vec.Cosine)
	// The device fixup is reduced precision; expect clear majority
	// agreement on the top-10.
	if ov := overlap(got, want); ov < 6 {
		t.Errorf("cosine overlap = %d/10", ov)
	}
}

func TestHammingKernelMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, bitDim, vlen := 200, 96, 4
	words := HammingWords(bitDim)
	padded := PadDims(words, vlen)
	codes := make([]vec.Binary, n)
	dram := make([]int32, n*padded)
	for i := range codes {
		b := vec.NewBinary(bitDim)
		for j := 0; j < bitDim; j++ {
			b.Set(j, rng.Intn(2) == 1)
		}
		codes[i] = b
		for w := 0; w < words; w++ {
			word := b.Words[w/2]
			if w%2 == 1 {
				word >>= 32
			}
			dram[i*padded+w] = int32(uint32(word))
		}
	}
	qb := codes[13]
	query := make([]int32, padded)
	for w := 0; w < words; w++ {
		word := qb.Words[w/2]
		if w%2 == 1 {
			word >>= 32
		}
		query[w] = int32(uint32(word))
	}

	p := runKernel(t, HammingKernel(words, n, vlen), dram, query, vlen)
	got := p.Results()
	if got[0].ID != 13 || got[0].Dist != 0 {
		t.Fatalf("self-query nearest = %+v", got[0])
	}
	// Cross-check all distances against the host Hamming engine.
	sel := topk.New(16)
	for i, c := range codes {
		sel.Push(i, float64(vec.Hamming(qb, c)))
	}
	want := sel.Results()
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("distance %d: device %v, host %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestKernelCycleScaling(t *testing.T) {
	// Wider vector units should take fewer cycles for the same scan.
	n, dims := 100, 64
	var prev uint64
	for i, vlen := range []int{2, 4, 8, 16} {
		dram, query, _, _ := buildLinearFixture(t, n, dims, vlen, 5)
		p := runKernel(t, EuclideanKernel(dims, n, vlen), dram, query, vlen)
		c := p.Stats().Cycles
		if i > 0 && c >= prev {
			t.Errorf("VL=%d (%d cycles) not faster than previous width (%d)", vlen, c, prev)
		}
		prev = c
	}
}

func TestDeviceShift(t *testing.T) {
	cases := []struct{ dim, min, max int }{
		{100, 7, 9},
		{960, 6, 7},
		{4096, 4, 6},
		{2, 11, 12},
	}
	for _, c := range cases {
		f := DeviceShift(c.dim)
		if f < c.min || f > c.max {
			t.Errorf("DeviceShift(%d) = %d, want in [%d,%d]", c.dim, f, c.min, c.max)
		}
	}
}

func TestQuantizeDeviceSaturates(t *testing.T) {
	out := QuantizeDevice([]float32{1e30, -1e30, 1}, 10)
	if out[0] != 2147483647 || out[1] != -2147483648 || out[2] != 1024 {
		t.Fatalf("QuantizeDevice = %v", out)
	}
}

func TestPadDims(t *testing.T) {
	if PadDims(100, 8) != 104 || PadDims(96, 8) != 96 || PadDims(1, 16) != 16 {
		t.Fatal("PadDims wrong")
	}
	if HammingWords(96) != 3 || HammingWords(97) != 4 {
		t.Fatal("HammingWords wrong")
	}
}
