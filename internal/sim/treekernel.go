package sim

// KD-tree traversal kernel. Section III-C motivates the hardware stack
// unit precisely for this: "The stack unit is a natural choice to
// facilitate backtracking when traversing hierarchical index
// structures", and Section III-D places indexing structures in the
// scratchpad. This kernel walks a scratchpad-resident kd-tree with the
// scalar unit, pushing far branches on the hardware stack, scans leaf
// buckets (contiguous DRAM ranges in tree order) with the vector unit,
// and stops after a bounded number of scanned vectors — the paper's
// "depth first search-like fashion" backtracking with a user-specified
// check bound.

import "fmt"

// TreeNodeWords is the scratchpad footprint of one serialized node:
// [cutDim (-1 for leaf), cutVal, left, right, leafStart, leafEnd].
const TreeNodeWords = 6

// TreeScratchLayout describes the traversal kernel's scratchpad ABI:
// the query occupies [0, Padded), the serialized tree starts at
// TreeBase.
type TreeScratchLayout struct {
	Padded   int
	TreeBase int
	MaxNodes int
}

// TreeLayout computes the layout for dims/vlen within scratchWords of
// scratchpad.
func TreeLayout(dims, vlen, scratchWords int) TreeScratchLayout {
	padded := PadDims(dims, vlen)
	return TreeScratchLayout{
		Padded:   padded,
		TreeBase: padded,
		MaxNodes: (scratchWords - padded) / TreeNodeWords,
	}
}

// KDTreeKernel emits the traversal kernel for a tree serialized at the
// layout's TreeBase, with the scan budget baked in as an immediate.
// The kernel inserts (treeOrderRow, distance) pairs into the priority
// queue; the host maps rows back to global ids.
func KDTreeKernel(dims, vlen, checks int, lay TreeScratchLayout) string {
	padded := lay.Padded
	chunks := padded / vlen
	var w kernelWriter
	w.line("; kd-tree traversal kernel: dims=%d (padded %d), VL=%d, checks=%d, tree@%d",
		dims, padded, vlen, checks, lay.TreeBase)
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s2, s2, s2            ; scanned")
	w.line("\tADDI s3, s0, %d           ; check budget", checks)
	w.line("\tXOR s14, s14, s14         ; stack depth")
	w.line("\tXOR s1, s1, s1            ; node = root")

	w.line("descend:")
	w.line("\tMULTI s10, s1, %d", TreeNodeWords)
	w.line("\tADDI s10, s10, %d         ; node address", lay.TreeBase)
	w.line("\tLOAD s11, s10, 0          ; cut dimension")
	w.line("\tBLT s11, s0, leaf")
	w.line("\tLOAD s12, s10, 1          ; cut value")
	w.line("\tLOAD s13, s11, 0          ; query[cutDim] (query at scratch 0)")
	w.line("\tBLT s13, s12, goleft")
	w.line("\tLOAD s18, s10, 2          ; far = left")
	w.line("\tPUSH s18")
	w.line("\tADDI s14, s14, 1")
	w.line("\tLOAD s1, s10, 3           ; near = right")
	w.line("\tJ descend")
	w.line("goleft:")
	w.line("\tLOAD s18, s10, 3          ; far = right")
	w.line("\tPUSH s18")
	w.line("\tADDI s14, s14, 1")
	w.line("\tLOAD s1, s10, 2           ; near = left")
	w.line("\tJ descend")

	w.line("leaf:")
	w.line("\tLOAD s15, s10, 4          ; bucket start row")
	w.line("\tLOAD s16, s10, 5          ; bucket end row")
	w.line("\tADD s19, s15, s0")
	w.line("rowloop:")
	w.line("\tBLT s19, s16, dorow")
	w.line("\tJ backtrack")
	w.line("dorow:")
	w.line("\tMULTI s17, s19, %d", padded)
	w.line("\tADDI s17, s17, %d         ; DRAM row address", DRAMBase)
	w.line("\tMEM_FETCH s17, %d", padded)
	w.line("\tVXOR v3, v3, v3")
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("\tXOR s6, s6, s6")
	w.line("inner:")
	w.line("\tVLOAD v0, s6, 0")
	w.line("\tVLOAD v1, s17, 0")
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s17, s17, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, inner")
	w.reduce("v3", "s7", vlen)
	w.line("\tPQUEUE_INSERT s19, s7")
	w.line("\tADDI s2, s2, 1")
	w.line("\tADDI s19, s19, 1")
	w.line("\tJ rowloop")

	w.line("backtrack:")
	w.line("\tBLT s2, s3, budget_ok     ; budget left?")
	w.line("\tJ done")
	w.line("budget_ok:")
	w.line("\tBGT s14, s0, popnext      ; branches left?")
	w.line("\tJ done")
	w.line("popnext:")
	w.line("\tPOP s1")
	w.line("\tSUBI s14, s14, 1")
	w.line("\tJ descend")
	w.line("done:")
	w.line("\tHALT")
	return w.b.String()
}

// SerializedTree is a host-built kd-tree in the kernel's scratch
// format, over rows re-laid in tree order.
type SerializedTree struct {
	Words []int32 // TreeNodeWords per node
	Order []int32 // tree-order row -> original slice-local row
	Depth int
}

// BuildSerializedTree constructs a kd-tree over n fixed-point rows
// (row i at data[i*padded : i*padded+dims]) and serializes it. Cut
// dimensions maximize subset variance, cuts are at the mean. The
// returned tree's leaf ranges refer to tree-order rows: callers must
// re-lay the data with Order before running the kernel.
func BuildSerializedTree(data []int32, n, dims, padded, leafSize, maxNodes int) (*SerializedTree, error) {
	if leafSize < 1 {
		leafSize = 16
	}
	t := &SerializedTree{}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	b := &treeBuilder{data: data, dims: dims, padded: padded, leafSize: leafSize, maxNodes: maxNodes}
	if _, err := b.build(rows, 0, 1); err != nil {
		return nil, err
	}
	t.Words = b.words
	t.Order = b.order
	t.Depth = b.depth
	return t, nil
}

type treeBuilder struct {
	data     []int32
	dims     int
	padded   int
	leafSize int
	maxNodes int
	words    []int32
	order    []int32
	depth    int
}

func (b *treeBuilder) row(r int32) []int32 {
	return b.data[int(r)*b.padded : int(r)*b.padded+b.dims]
}

// build serializes the subtree over rows, returning its node index.
func (b *treeBuilder) build(rows []int32, start, depth int) (int32, error) {
	if len(b.words)/TreeNodeWords >= b.maxNodes {
		return 0, fmt.Errorf("sim: kd-tree exceeds scratchpad budget of %d nodes", b.maxNodes)
	}
	if depth > b.depth {
		b.depth = depth
	}
	idx := int32(len(b.words) / TreeNodeWords)
	b.words = append(b.words, -1, 0, 0, 0, 0, 0)

	if len(rows) <= b.leafSize {
		b.setLeaf(idx, rows, start)
		return idx, nil
	}
	dim, cut, ok := b.chooseCut(rows)
	if !ok {
		b.setLeaf(idx, rows, start)
		return idx, nil
	}
	var left, right []int32
	for _, r := range rows {
		if b.row(r)[dim] < cut {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		b.setLeaf(idx, rows, start)
		return idx, nil
	}
	l, err := b.build(left, start, depth+1)
	if err != nil {
		return 0, err
	}
	r, err := b.build(right, start+len(left), depth+1)
	if err != nil {
		return 0, err
	}
	base := int(idx) * TreeNodeWords
	b.words[base+0] = int32(dim)
	b.words[base+1] = cut
	b.words[base+2] = l
	b.words[base+3] = r
	return idx, nil
}

func (b *treeBuilder) setLeaf(idx int32, rows []int32, start int) {
	base := int(idx) * TreeNodeWords
	b.words[base+0] = -1
	b.words[base+4] = int32(start)
	b.words[base+5] = int32(start + len(rows))
	b.order = append(b.order, rows...)
}

func (b *treeBuilder) chooseCut(rows []int32) (dim int, cut int32, ok bool) {
	bestVar := -1.0
	n := float64(len(rows))
	var bestMean float64
	for d := 0; d < b.dims; d++ {
		var sum, sq float64
		for _, r := range rows {
			v := float64(b.row(r)[d])
			sum += v
			sq += v * v
		}
		mean := sum / n
		if v := sq/n - mean*mean; v > bestVar {
			bestVar, dim, bestMean = v, d, mean
		}
	}
	if bestVar <= 0 {
		return 0, 0, false
	}
	return dim, int32(bestMean), true
}
