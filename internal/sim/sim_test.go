package sim

import (
	"strings"
	"testing"

	"ssam/internal/asm"
	"ssam/internal/isa"
)

func run(t *testing.T, src string, dram []int32) *PU {
	t.Helper()
	return runCfg(t, src, dram, DefaultConfig(4))
}

func runCfg(t *testing.T, src string, dram []int32, cfg Config) *PU {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p := New(cfg, dram)
	if err := p.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

func TestScalarArithmetic(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 7
		ADDI s2, s0, 5
		ADD  s3, s1, s2
		SUB  s4, s1, s2
		MULT s5, s1, s2
		SUBI s6, s1, 10
		MULTI s7, s1, -3
		HALT
	`, nil)
	if p.S[3] != 12 || p.S[4] != 2 || p.S[5] != 35 || p.S[6] != -3 || p.S[7] != -21 {
		t.Fatalf("regs: %v", p.S[:8])
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 0b1100
		ADDI s2, s0, 0b1010
		AND s3, s1, s2
		OR  s4, s1, s2
		XOR s5, s1, s2
		NOT s6, s1
		ANDI s7, s1, 4
		ORI  s8, s1, 1
		XORI s9, s1, 0b1111
		SL  s10, s1, 2
		SR  s11, s1, 2
		ADDI s12, s0, -8
		SRA s13, s12, 1
		SR  s14, s12, 28
		POPCOUNT s15, s1
		HALT
	`, nil)
	want := map[int]int32{
		3: 0b1000, 4: 0b1110, 5: 0b0110, 6: ^int32(12), 7: 4, 8: 13,
		9: 0b0011, 10: 48, 11: 3, 13: -4, 14: 15, 15: 2,
	}
	for r, w := range want {
		if p.S[r] != w {
			t.Errorf("s%d = %d, want %d", r, p.S[r], w)
		}
	}
}

func TestBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	p := run(t, `
		ADDI s1, s0, 10
		XOR  s2, s2, s2   ; i
		XOR  s3, s3, s3   ; sum
	loop:	ADDI s2, s2, 1
		ADD  s3, s3, s2
		BLT  s2, s1, loop
		HALT
	`, nil)
	if p.S[3] != 55 {
		t.Fatalf("sum = %d, want 55", p.S[3])
	}
}

func TestBranchVariants(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 3
		ADDI s2, s0, 3
		BE   s1, s2, eq
		ADDI s9, s0, 111
	eq:	BNE  s1, s2, bad
		BGT  s1, s0, gt
		ADDI s9, s0, 222
	gt:	ADDI s3, s0, -1
		BLT  s3, s0, done
		ADDI s9, s0, 333
	bad:	ADDI s9, s0, 444
	done:	HALT
	`, nil)
	if p.S[9] != 0 {
		t.Fatalf("s9 = %d, some branch misfired", p.S[9])
	}
}

func TestStackUnit(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 42
		ADDI s2, s0, 43
		PUSH s1
		PUSH s2
		POP  s3
		POP  s4
		HALT
	`, nil)
	if p.S[3] != 43 || p.S[4] != 42 {
		t.Fatalf("stack order wrong: s3=%d s4=%d", p.S[3], p.S[4])
	}
}

func TestStackOverflowUnderflow(t *testing.T) {
	prog, _ := asm.Assemble("POP s1\nHALT")
	p := New(DefaultConfig(2), nil)
	if err := p.Run(prog); err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v, want underflow", err)
	}
	cfg := DefaultConfig(2)
	cfg.StackDepth = 2
	prog2, _ := asm.Assemble("PUSH s0\nPUSH s0\nPUSH s0\nHALT")
	p2 := New(cfg, nil)
	if err := p2.Run(prog2); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want overflow", err)
	}
}

func TestVectorOpsAndMoves(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 3
		SVMOVE v0, s1, -1     ; broadcast 3
		ADDI s2, s0, 10
		SVMOVE v1, s2, 0      ; lane 0 = 10
		VADD v2, v0, v1
		VSMOVE s3, v2, 0      ; 13
		VSMOVE s4, v2, 1      ; 3
		VMULT v3, v0, v0
		VSMOVE s5, v3, 3      ; 9
		HALT
	`, nil)
	if p.S[3] != 13 || p.S[4] != 3 || p.S[5] != 9 {
		t.Fatalf("vector results: %v", p.S[:6])
	}
}

func TestScratchpadLoadStore(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 99
		STORE s1, s0, 40      ; scratch[40] = 99
		LOAD  s2, s0, 40
		ADDI s3, s0, 100
		SVMOVE v0, s1, -1
		VSTORE v0, s3, 0      ; scratch[100..104) = 99
		VLOAD  v1, s3, 0
		VSMOVE s4, v1, 3
		HALT
	`, nil)
	if p.S[2] != 99 || p.S[4] != 99 {
		t.Fatalf("scratch round trip: s2=%d s4=%d", p.S[2], p.S[4])
	}
}

func TestDRAMAccessAndPrefetch(t *testing.T) {
	dram := []int32{10, 20, 30, 40, 50, 60, 70, 80}
	src := `
		ADDI s1, s0, 0x1000000
		MEM_FETCH s1, 8
		VLOAD v0, s1, 0
		VLOAD v1, s1, 4
		VSMOVE s2, v0, 0
		VSMOVE s3, v1, 3
		HALT
	`
	p := run(t, src, dram)
	if p.S[2] != 10 || p.S[3] != 80 {
		t.Fatalf("dram values: s2=%d s3=%d", p.S[2], p.S[3])
	}
	prefetched := p.Stats()

	// Same program without the prefetch must cost more cycles.
	noFetch := strings.Replace(src, "MEM_FETCH s1, 8\n", "", 1)
	p2 := run(t, noFetch, dram)
	if p2.Stats().Cycles <= prefetched.Cycles-1 {
		t.Fatalf("unprefetched run (%d cycles) not slower than prefetched (%d)",
			p2.Stats().Cycles, prefetched.Cycles)
	}
	if prefetched.DRAMBytesRead != 32 {
		t.Fatalf("DRAMBytesRead = %d, want 32", prefetched.DRAMBytesRead)
	}
}

func TestOutOfRangeAccessFaults(t *testing.T) {
	prog, _ := asm.Assemble("LOAD s1, s0, 999999999\nHALT")
	p := New(DefaultConfig(2), nil)
	if err := p.Run(prog); err == nil {
		t.Fatal("no fault on wild load")
	}
}

func TestPriorityQueueOps(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 1
		ADDI s2, s0, 50
		PQUEUE_INSERT s1, s2
		ADDI s1, s0, 2
		ADDI s2, s0, 30
		PQUEUE_INSERT s1, s2
		ADDI s1, s0, 3
		ADDI s2, s0, 40
		PQUEUE_INSERT s1, s2
		PQUEUE_LOAD s3, 0     ; id at pos 0
		PQUEUE_LOAD s4, 1     ; value at pos 0
		PQUEUE_LOAD s5, 2     ; id at pos 1
		HALT
	`, nil)
	if p.S[3] != 2 || p.S[4] != 30 || p.S[5] != 3 {
		t.Fatalf("queue loads: %v", p.S[3:6])
	}
	res := p.Results()
	if len(res) != 3 || res[0].ID != 2 || res[1].ID != 3 || res[2].ID != 1 {
		t.Fatalf("results: %v", res)
	}
}

func TestPQueueResetAndEmptyLoad(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 9
		PQUEUE_INSERT s1, s1
		PQUEUE_RESET
		PQUEUE_LOAD s2, 0
		HALT
	`, nil)
	if p.S[2] != -1 {
		t.Fatalf("empty queue load = %d, want -1", p.S[2])
	}
}

func TestSFXP(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 0b1010
		ADDI s2, s0, 0b0110
		ADDI s3, s0, 5
		SFXP s3, s1, s2
		HALT
	`, nil)
	if p.S[3] != 7 {
		t.Fatalf("SFXP = %d, want 7", p.S[3])
	}
}

func TestVFXP(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, -1        ; 0xFFFFFFFF
		SVMOVE v0, s1, -1
		SVMOVE v1, s0, -1      ; zeros
		VXOR v2, v2, v2
		VFXP v2, v0, v1
		VFXP v2, v0, v1
		VSMOVE s2, v2, 0
		HALT
	`, nil)
	if p.S[2] != 64 {
		t.Fatalf("VFXP accumulation = %d, want 64", p.S[2])
	}
}

func TestSoftwareQueueCostsMore(t *testing.T) {
	src := `
		ADDI s1, s0, 200
		XOR  s2, s2, s2
	loop:	PQUEUE_INSERT s2, s2
		ADDI s2, s2, 1
		BLT  s2, s1, loop
		HALT
	`
	hw := run(t, src, nil)
	cfg := DefaultConfig(4)
	cfg.SoftwareQueue = true
	sw := runCfg(t, src, nil, cfg)
	if sw.Stats().Cycles <= hw.Stats().Cycles {
		t.Fatalf("software queue (%d cycles) not slower than hardware (%d)",
			sw.Stats().Cycles, hw.Stats().Cycles)
	}
	// Contents must be identical either way.
	hr, sr := hw.Results(), sw.Results()
	if len(hr) != len(sr) {
		t.Fatalf("result sizes differ: %d vs %d", len(hr), len(sr))
	}
	for i := range hr {
		if hr[i] != sr[i] {
			t.Fatalf("result %d differs: %v vs %v", i, hr[i], sr[i])
		}
	}
}

func TestRunawayGuard(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 1000
	prog, _ := asm.Assemble("loop: J loop")
	p := New(cfg, nil)
	if err := p.Run(prog); err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("err = %v, want MaxCycles", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	// Program without HALT falls off the end.
	prog, _ := asm.Assemble("ADD s1, s1, s1")
	p := New(DefaultConfig(2), nil)
	if err := p.Run(prog); err == nil {
		t.Fatal("no error when pc runs off program end")
	}
}

func TestResetForQuery(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 5
		PQUEUE_INSERT s1, s1
		PUSH s1
		HALT
	`, nil)
	if err := p.WriteScratch(0, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p.ResetForQuery()
	if p.S[1] != 0 || p.Queue.Len() != 0 || len(p.stack) != 0 {
		t.Fatal("ResetForQuery did not clear state")
	}
	if p.scratch[1] != 2 {
		t.Fatal("ResetForQuery should keep scratchpad contents")
	}
}

func TestWriteScratchBounds(t *testing.T) {
	p := New(DefaultConfig(2), nil)
	if err := p.WriteScratch(-1, []int32{1}); err == nil {
		t.Fatal("no error on negative offset")
	}
	if err := p.WriteScratch(8190, []int32{1, 2, 3}); err == nil {
		t.Fatal("no error past scratch end")
	}
}

func TestInstructionCounters(t *testing.T) {
	p := run(t, `
		VADD v1, v1, v1
		ADD s1, s1, s1
		HALT
	`, nil)
	st := p.Stats()
	if st.VectorInsts != 1 || st.ScalarInsts != 2 || st.Instructions != 3 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Seconds(1e9) <= 0 {
		t.Fatal("Seconds not positive")
	}
	if st.OpCounts[isa.ADD] != 2 || st.OpCounts[isa.HALT] != 1 {
		t.Fatalf("op histogram wrong: ADD=%d HALT=%d", st.OpCounts[isa.ADD], st.OpCounts[isa.HALT])
	}
	if st.VectorPct() < 33 || st.VectorPct() > 34 {
		t.Fatalf("VectorPct = %v", st.VectorPct())
	}
}

func TestMemoryReadPct(t *testing.T) {
	p := run(t, `
		ADDI s1, s0, 5
		STORE s1, s0, 0
		LOAD s2, s0, 0
		LOAD s3, s0, 0
		HALT
	`, nil)
	st := p.Stats()
	if got := st.MemoryReadPct(); got != 40 { // 2 loads of 5 instructions
		t.Fatalf("MemoryReadPct = %v, want 40", got)
	}
	if (Stats{}).MemoryReadPct() != 0 || (Stats{}).VectorPct() != 0 {
		t.Fatal("zero stats percentages should be 0")
	}
}

func TestDecodedProgramRuns(t *testing.T) {
	// End-to-end: assemble -> encode -> decode -> run.
	prog, err := asm.Assemble("ADDI s1, s0, 9\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.DecodeProgram(isa.EncodeProgram(prog))
	if err != nil {
		t.Fatal(err)
	}
	p := New(DefaultConfig(2), nil)
	if err := p.Run(back); err != nil {
		t.Fatal(err)
	}
	if p.S[1] != 9 {
		t.Fatalf("s1 = %d", p.S[1])
	}
}
