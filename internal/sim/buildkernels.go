package sim

// Index-construction kernels (Section VI-B): the SSAM is "not limited
// to approximate kNN search and can also be used for kNN index
// construction". Two data-intensive scans dominate index builds and
// are offloaded here:
//
//   - k-means assignment: every database vector scored against K
//     centroids, the argmin written back (hierarchical k-means builds,
//     "treating cluster centroids as the dataset and streaming the
//     dataset in as kNN queries to determine the closest centroid");
//   - per-dimension sum / sum-of-squares: the variance scan behind
//     kd-tree cut selection ("SSAMs can be used to quickly scan the
//     dataset and compute the variance across all dimensions").
//
// The host handles the short serialized phases (centroid update, cut
// assignment), exactly as the paper describes.

import "fmt"

// KMeansScratchLayout describes the scratchpad ABI of the assignment
// kernel: K centroids of padded words each, then a one-vector staging
// buffer.
type KMeansScratchLayout struct {
	Padded     int // words per centroid / vector
	K          int
	VecBuf     int // word offset of the staging buffer
	TotalWords int
}

// KMeansLayout computes the scratchpad layout for dims/vlen/K.
func KMeansLayout(dims, vlen, k int) KMeansScratchLayout {
	padded := PadDims(dims, vlen)
	return KMeansScratchLayout{
		Padded:     padded,
		K:          k,
		VecBuf:     k * padded,
		TotalWords: (k + 1) * padded,
	}
}

// KMeansAssignKernel emits the assignment kernel: for each of nvec
// database vectors, copy the vector to the scratch staging buffer,
// compute squared-L2 distance to each scratch-resident centroid, and
// store the argmin centroid index to the assignment region that
// follows the vectors in DRAM (word nvec*padded + vectorIndex).
func KMeansAssignKernel(dims, nvec, vlen, k int) string {
	lay := KMeansLayout(dims, vlen, k)
	padded := lay.Padded
	chunks := padded / vlen
	assignBase := DRAMBase + nvec*padded
	var w kernelWriter
	w.line("; k-means assignment kernel: dims=%d (padded %d), nvec=%d, K=%d, VL=%d",
		dims, padded, nvec, k, vlen)
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s2, s2, s2            ; vector index")
	w.line("\tADDI s3, s0, %d           ; nvec", nvec)
	w.line("\tADDI s1, s0, %d           ; DRAM read cursor", DRAMBase)
	w.line("\tADDI s16, s0, %d          ; assignment write cursor", assignBase)
	w.line("outer:")
	w.line("\tMEM_FETCH s1, %d", padded)
	// Stage the vector into the scratch buffer.
	w.line("\tADDI s6, s0, %d           ; staging cursor", lay.VecBuf)
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("copy:")
	w.line("\tVLOAD v0, s1, 0")
	w.line("\tVSTORE v0, s6, 0")
	w.line("\tADDI s1, s1, %d", vlen)
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, copy")
	// Centroid loop.
	w.line("\tADDI s10, s0, 2147483647  ; best distance")
	w.line("\tXOR s11, s11, s11         ; best index")
	w.line("\tXOR s12, s12, s12         ; centroid index")
	w.line("\tADDI s13, s0, %d          ; K", k)
	w.line("\tXOR s14, s14, s14         ; centroid cursor")
	w.line("cloop:")
	w.line("\tVXOR v3, v3, v3")
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s6, s0, %d           ; staged vector cursor", lay.VecBuf)
	w.line("inner:")
	w.line("\tVLOAD v0, s6, 0           ; vector chunk (scratch)")
	w.line("\tVLOAD v1, s14, 0          ; centroid chunk (scratch)")
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s14, s14, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, inner")
	w.reduce("v3", "s7", vlen)
	w.line("\tBLT s10, s7, worse        ; keep previous best?")
	w.line("\tADD s10, s7, s0")
	w.line("\tADD s11, s12, s0")
	w.line("worse:")
	w.line("\tADDI s12, s12, 1")
	w.line("\tBLT s12, s13, cloop")
	// Store assignment and advance.
	w.line("\tSTORE s11, s16, 0")
	w.line("\tADDI s16, s16, 1")
	w.line("\tADDI s2, s2, 1")
	w.line("\tBLT s2, s3, outer")
	w.line("\tHALT")
	return w.b.String()
}

// VarianceShifts are the pre-accumulation right-shifts the variance
// kernel applies so 32-bit scratch accumulators cannot overflow over
// nvec vectors.
type VarianceShifts struct {
	Sum int // applied to values before summing
	Sq  int // applied to squared values before summing
}

// VarianceShiftsFor sizes the shifts for a scan of nvec vectors of
// device fixed-point values with the given fraction shift (values
// bounded by ~2^(4+shift)).
func VarianceShiftsFor(nvec, shift int) VarianceShifts {
	lg := 0
	for 1<<lg < nvec {
		lg++
	}
	s := VarianceShifts{}
	if over := lg + 5 + shift - 30; over > 0 {
		s.Sum = over
	}
	if over := lg + 10 + 2*shift - 30; over > 0 {
		s.Sq = over
	}
	return s
}

// VarianceKernel emits the per-dimension sum / sum-of-squares scan:
// scratch words [0, padded) accumulate shifted sums and [padded,
// 2*padded) shifted sums of squares; the host zeroes the region first
// and de-quantizes afterwards.
func VarianceKernel(dims, nvec, vlen int, sh VarianceShifts) string {
	padded := PadDims(dims, vlen)
	chunks := padded / vlen
	var w kernelWriter
	w.line("; variance scan kernel: dims=%d (padded %d), nvec=%d, VL=%d, shifts sum>>%d sq>>%d",
		dims, padded, nvec, vlen, sh.Sum, sh.Sq)
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s2, s2, s2            ; vector index")
	w.line("\tADDI s3, s0, %d           ; nvec", nvec)
	w.line("\tADDI s1, s0, %d           ; DRAM cursor", DRAMBase)
	w.line("outer:")
	w.line("\tMEM_FETCH s1, %d", padded)
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("\tXOR s6, s6, s6            ; sum cursor")
	w.line("\tADDI s7, s0, %d           ; sumsq cursor", padded)
	w.line("inner:")
	w.line("\tVLOAD v1, s1, 0           ; data chunk")
	if sh.Sum > 0 {
		w.line("\tVSRA v4, v1, %d", sh.Sum)
	} else {
		w.line("\tVADD v4, v1, v1")
		w.line("\tVSUB v4, v4, v1       ; v4 = v1")
	}
	w.line("\tVLOAD v2, s6, 0           ; running sums")
	w.line("\tVADD v2, v2, v4")
	w.line("\tVSTORE v2, s6, 0")
	w.line("\tVMULT v3, v1, v1")
	if sh.Sq > 0 {
		w.line("\tVSRA v3, v3, %d", sh.Sq)
	}
	w.line("\tVLOAD v2, s7, 0           ; running sums of squares")
	w.line("\tVADD v2, v2, v3")
	w.line("\tVSTORE v2, s7, 0")
	w.line("\tADDI s1, s1, %d", vlen)
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s7, s7, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, inner")
	w.line("\tADDI s2, s2, 1")
	w.line("\tBLT s2, s3, outer")
	w.line("\tHALT")
	return w.b.String()
}

// checkScratchFit reports whether a k-means layout fits the default
// 32 KB scratchpad.
func (l KMeansScratchLayout) Fits(scratchWords int) error {
	if l.TotalWords > scratchWords {
		return fmt.Errorf("sim: k-means layout needs %d scratch words, have %d (reduce K or dims)",
			l.TotalWords, scratchWords)
	}
	return nil
}
