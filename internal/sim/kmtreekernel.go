package sim

// Hierarchical k-means tree kernel: the third index of the paper's
// characterization running on the device. Interior nodes live in the
// scratchpad; their cluster centroids live in device memory (Section
// III-D: large index payloads such as "centroids in hierarchical
// k-means are stored in SSAM memory"). Traversal evaluates every
// child's centroid distance on the vector unit, descends the closest
// child, pushes the others on the hardware stack, and scans leaf
// buckets (contiguous DRAM ranges in tree order) until a bounded
// number of vectors has been scored.

import (
	"fmt"
	"math/rand"
)

// KMNodeWords returns the scratchpad footprint of one serialized
// k-means node for branching b:
// [isLeaf, leafStart, leafEnd, childCount, child0..child_{b-1}].
func KMNodeWords(branching int) int { return 4 + branching }

// KMTreeLayout describes the traversal kernel's memory ABI: query at
// scratch [0, Padded), nodes at scratch TreeBase; rows at DRAM [0,
// N*Padded), centroids (one per node) at DRAM CentBase.
type KMTreeLayout struct {
	Padded    int
	TreeBase  int
	MaxNodes  int
	Branching int
	CentBase  int // DRAM word offset of the centroid array
}

// NewKMTreeLayout computes the layout.
func NewKMTreeLayout(dims, vlen, scratchWords, branching, n int) KMTreeLayout {
	padded := PadDims(dims, vlen)
	return KMTreeLayout{
		Padded:    padded,
		TreeBase:  padded,
		MaxNodes:  (scratchWords - padded) / KMNodeWords(branching),
		Branching: branching,
		CentBase:  n * padded,
	}
}

// KMTreeKernel emits the traversal kernel with the scan budget baked
// in. The kernel inserts (treeOrderRow, distance) pairs into the
// priority queue.
func KMTreeKernel(dims, vlen, checks int, lay KMTreeLayout) string {
	padded := lay.Padded
	chunks := padded / vlen
	nodeWords := KMNodeWords(lay.Branching)
	var w kernelWriter
	w.line("; k-means tree kernel: dims=%d (padded %d), VL=%d, checks=%d, B=%d",
		dims, padded, vlen, checks, lay.Branching)
	w.line("\tXOR s0, s0, s0")
	w.line("\tXOR s2, s2, s2            ; scanned")
	w.line("\tADDI s3, s0, %d           ; check budget", checks)
	w.line("\tXOR s14, s14, s14         ; stack depth")
	w.line("\tXOR s1, s1, s1            ; node = root")

	w.line("descend:")
	w.line("\tMULTI s10, s1, %d", nodeWords)
	w.line("\tADDI s10, s10, %d         ; node address", lay.TreeBase)
	w.line("\tLOAD s11, s10, 0          ; isLeaf")
	w.line("\tBGT s11, s0, leaf")
	w.line("\tLOAD s22, s10, 3          ; child count")
	w.line("\tXOR s21, s21, s21         ; child index")
	w.line("\tADDI s24, s0, 2147483647  ; best child distance")
	w.line("\tXOR s23, s23, s23         ; best child node")
	w.line("childloop:")
	w.line("\tADDI s18, s10, 4")
	w.line("\tADD s18, s18, s21")
	w.line("\tLOAD s18, s18, 0          ; child node id")
	w.line("\tMULTI s25, s18, %d", padded)
	w.line("\tADDI s25, s25, %d         ; centroid address", DRAMBase+lay.CentBase)
	w.line("\tMEM_FETCH s25, %d", padded)
	w.line("\tVXOR v3, v3, v3")
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("\tXOR s6, s6, s6")
	w.line("cinner:")
	w.line("\tVLOAD v0, s6, 0")
	w.line("\tVLOAD v1, s25, 0")
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s25, s25, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, cinner")
	w.reduce("v3", "s7", vlen)
	w.line("\tBLT s7, s24, newbest")
	w.line("\tPUSH s18                  ; defer farther child")
	w.line("\tADDI s14, s14, 1")
	w.line("\tJ childnext")
	w.line("newbest:")
	w.line("\tBE s21, s0, firstbest")
	w.line("\tPUSH s23                  ; defer previous best")
	w.line("\tADDI s14, s14, 1")
	w.line("firstbest:")
	w.line("\tADD s24, s7, s0")
	w.line("\tADD s23, s18, s0")
	w.line("childnext:")
	w.line("\tADDI s21, s21, 1")
	w.line("\tBLT s21, s22, childloop")
	w.line("\tADD s1, s23, s0")
	w.line("\tJ descend")

	w.line("leaf:")
	w.line("\tLOAD s15, s10, 1          ; bucket start row")
	w.line("\tLOAD s16, s10, 2          ; bucket end row")
	w.line("\tADD s19, s15, s0")
	w.line("rowloop:")
	w.line("\tBLT s19, s16, dorow")
	w.line("\tJ backtrack")
	w.line("dorow:")
	w.line("\tMULTI s17, s19, %d", padded)
	w.line("\tADDI s17, s17, %d", DRAMBase)
	w.line("\tMEM_FETCH s17, %d", padded)
	w.line("\tVXOR v3, v3, v3")
	w.line("\tXOR s4, s4, s4")
	w.line("\tADDI s5, s0, %d", chunks)
	w.line("\tXOR s6, s6, s6")
	w.line("linner:")
	w.line("\tVLOAD v0, s6, 0")
	w.line("\tVLOAD v1, s17, 0")
	w.line("\tVSUB v2, v0, v1")
	w.line("\tVMULT v2, v2, v2")
	w.line("\tVADD v3, v3, v2")
	w.line("\tADDI s6, s6, %d", vlen)
	w.line("\tADDI s17, s17, %d", vlen)
	w.line("\tADDI s4, s4, 1")
	w.line("\tBLT s4, s5, linner")
	w.reduce("v3", "s7", vlen)
	w.line("\tPQUEUE_INSERT s19, s7")
	w.line("\tADDI s2, s2, 1")
	w.line("\tADDI s19, s19, 1")
	w.line("\tJ rowloop")

	w.line("backtrack:")
	w.line("\tBLT s2, s3, budget_ok")
	w.line("\tJ done")
	w.line("budget_ok:")
	w.line("\tBGT s14, s0, popnext")
	w.line("\tJ done")
	w.line("popnext:")
	w.line("\tPOP s1")
	w.line("\tSUBI s14, s14, 1")
	w.line("\tJ descend")
	w.line("done:")
	w.line("\tHALT")
	return w.b.String()
}

// SerializedKMTree is a host-built hierarchical k-means tree in the
// kernel's format.
type SerializedKMTree struct {
	Words []int32 // KMNodeWords(branching) per node
	Cents []int32 // numNodes centroids, padded words each
	Order []int32 // tree-order row -> original slice-local row
	Depth int
	Nodes int
}

// BuildSerializedKMTree clusters n fixed-point rows recursively with
// the given branching factor and serializes nodes, centroids and the
// leaf-contiguous row order.
func BuildSerializedKMTree(data []int32, n, dims, padded, branching, leafSize, maxNodes int, seed int64) (*SerializedKMTree, error) {
	if branching < 2 {
		branching = 2
	}
	if leafSize < 1 {
		leafSize = 16
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	b := &kmTreeBuilder{
		data: data, dims: dims, padded: padded,
		branching: branching, leafSize: leafSize, maxNodes: maxNodes,
		rng: rand.New(rand.NewSource(seed)),
	}
	if _, err := b.build(rows, 0, 1); err != nil {
		return nil, err
	}
	return &SerializedKMTree{
		Words: b.words, Cents: b.cents, Order: b.order,
		Depth: b.depth, Nodes: len(b.cents) / padded,
	}, nil
}

type kmTreeBuilder struct {
	data      []int32
	dims      int
	padded    int
	branching int
	leafSize  int
	maxNodes  int
	rng       *rand.Rand
	words     []int32
	cents     []int32
	order     []int32
	depth     int
}

func (b *kmTreeBuilder) row(r int32) []int32 {
	return b.data[int(r)*b.padded : int(r)*b.padded+b.dims]
}

func (b *kmTreeBuilder) nodeWords() int { return KMNodeWords(b.branching) }

// build serializes the subtree over rows and returns its node id.
func (b *kmTreeBuilder) build(rows []int32, start, depth int) (int32, error) {
	if len(b.words)/b.nodeWords() >= b.maxNodes {
		return 0, fmt.Errorf("sim: k-means tree exceeds scratchpad budget of %d nodes", b.maxNodes)
	}
	if depth > b.depth {
		b.depth = depth
	}
	idx := int32(len(b.words) / b.nodeWords())
	b.words = append(b.words, make([]int32, b.nodeWords())...)
	b.appendCentroid(rows)

	if len(rows) <= b.leafSize {
		b.setLeaf(idx, rows, start)
		return idx, nil
	}
	groups := b.cluster(rows)
	if len(groups) < 2 {
		b.setLeaf(idx, rows, start)
		return idx, nil
	}
	children := make([]int32, 0, len(groups))
	off := start
	for _, g := range groups {
		c, err := b.build(g, off, depth+1)
		if err != nil {
			return 0, err
		}
		children = append(children, c)
		off += len(g)
	}
	base := int(idx) * b.nodeWords()
	b.words[base+0] = 0
	b.words[base+3] = int32(len(children))
	for i, c := range children {
		b.words[base+4+i] = c
	}
	return idx, nil
}

func (b *kmTreeBuilder) setLeaf(idx int32, rows []int32, start int) {
	base := int(idx) * b.nodeWords()
	b.words[base+0] = 1
	b.words[base+1] = int32(start)
	b.words[base+2] = int32(start + len(rows))
	b.order = append(b.order, rows...)
}

// appendCentroid records the integer mean of rows, padded.
func (b *kmTreeBuilder) appendCentroid(rows []int32) {
	cent := make([]int64, b.dims)
	for _, r := range rows {
		for d, v := range b.row(r) {
			cent[d] += int64(v)
		}
	}
	out := make([]int32, b.padded)
	for d := range cent {
		out[d] = int32(cent[d] / int64(len(rows)))
	}
	b.cents = append(b.cents, out...)
}

// cluster partitions rows into up to branching groups with a short
// integer Lloyd run; degenerate splits collapse to fewer groups.
func (b *kmTreeBuilder) cluster(rows []int32) [][]int32 {
	k := b.branching
	if k > len(rows) {
		k = len(rows)
	}
	perm := b.rng.Perm(len(rows))
	centers := make([][]int32, k)
	for c := 0; c < k; c++ {
		centers[c] = append([]int32(nil), b.row(rows[perm[c]])...)
	}
	assign := make([]int, len(rows))
	for iter := 0; iter < 3; iter++ {
		for i, r := range rows {
			best, bestD := 0, int64(1)<<62
			for c := 0; c < k; c++ {
				var acc int64
				rr := b.row(r)
				for d := range rr {
					df := int64(rr[d]) - int64(centers[c][d])
					acc += df * df
				}
				if acc < bestD {
					best, bestD = c, acc
				}
			}
			assign[i] = best
		}
		sums := make([][]int64, k)
		counts := make([]int64, k)
		for c := range sums {
			sums[c] = make([]int64, b.dims)
		}
		for i, r := range rows {
			c := assign[i]
			counts[c]++
			for d, v := range b.row(r) {
				sums[c][d] += int64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := range centers[c] {
				centers[c][d] = int32(sums[c][d] / counts[c])
			}
		}
	}
	groups := make([][]int32, k)
	for i, r := range rows {
		groups[assign[i]] = append(groups[assign[i]], r)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}
