package ssam

import (
	"strings"
	"testing"
)

// TestNewRejectsOutOfRangeEnums pins the fix for the silent-default
// bug: unknown Metric/Mode/Execution values used to fall through to
// Euclidean/Linear/Host instead of being rejected.
func TestNewRejectsOutOfRangeEnums(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"metric high", Config{Metric: Hamming + 1}, "metric"},
		{"metric negative", Config{Metric: -1}, "metric"},
		// Quantized is the current upper bound; Valid() widens silently
		// when a mode is appended, so pin that one-past-the-end is
		// rejected.
		{"mode high", Config{Mode: Quantized + 1}, "mode"},
		{"mode far high", Config{Mode: Quantized + 100}, "mode"},
		{"mode negative", Config{Mode: -1}, "mode"},
		{"execution high", Config{Execution: Device + 1}, "execution"},
		{"execution negative", Config{Execution: -1}, "execution"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(8, tc.cfg); err == nil {
				t.Fatalf("New accepted %+v", tc.cfg)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := New(8, Config{Metric: Cosine, Mode: Linear}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestEnumStrings(t *testing.T) {
	if s := (Hamming + 1).String(); s != "unknown" {
		t.Fatalf("out-of-range Metric.String() = %q, want unknown", s)
	}
	if s := (Quantized + 1).String(); s != "unknown" {
		t.Fatalf("out-of-range Mode.String() = %q, want unknown", s)
	}
	if s := Graph.String(); s != "graph" {
		t.Fatalf("Graph.String() = %q, want graph", s)
	}
	if s := Quantized.String(); s != "quantized" {
		t.Fatalf("Quantized.String() = %q, want quantized", s)
	}
	if s := (Device + 1).String(); s != "unknown" {
		t.Fatalf("out-of-range Execution.String() = %q, want unknown", s)
	}
}

func TestParseRoundTrips(t *testing.T) {
	for m := Euclidean; m <= Hamming; m++ {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	for m := Linear; m <= Quantized; m++ {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseMode("graph"); err != nil || got != Graph {
		t.Fatalf("ParseMode(graph) = %v, %v", got, err)
	}
	if got, err := ParseMode("quantized"); err != nil || got != Quantized {
		t.Fatalf("ParseMode(quantized) = %v, %v", got, err)
	}
	for _, e := range []Execution{Host, Device} {
		got, err := ParseExecution(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseExecution(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseMetric("chebyshev"); err == nil {
		t.Fatal("ParseMetric accepted unknown name")
	}
	if _, err := ParseMode("ivf"); err == nil {
		t.Fatal("ParseMode accepted unknown name")
	}
	if _, err := ParseExecution("gpu"); err == nil {
		t.Fatal("ParseExecution accepted unknown name")
	}
}
