package ssam_test

// Public-API tests for the on-device indexes: kd-tree, hierarchical
// k-means and hyperplane LSH running through the cycle simulator.

import (
	"testing"

	"ssam"
	"ssam/internal/dataset"
)

func devIndexDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Spec{
		Name: "devidx", N: 2000, Dim: 16, NumQueries: 10, K: 5,
		Clusters: 8, ClusterStd: 0.25, Seed: 41,
	})
}

func TestDeviceIndexedModes(t *testing.T) {
	ds := devIndexDataset(t)
	exact := buildRegion(t, ds, ssam.Config{Mode: ssam.Linear})
	defer exact.Free()

	cases := []ssam.Config{
		{Mode: ssam.KDTree, Execution: ssam.Device, VectorLength: 4,
			Index: ssam.IndexParams{Checks: 64}},
		{Mode: ssam.KMeans, Execution: ssam.Device, VectorLength: 4,
			Index: ssam.IndexParams{Checks: 64, Branching: 4}},
		{Mode: ssam.MPLSH, Execution: ssam.Device, VectorLength: 4,
			Index: ssam.IndexParams{Tables: 4, Bits: 5, Probes: 8}},
	}
	for _, cfg := range cases {
		r := buildRegion(t, ds, cfg)
		hits, total := 0, 0
		var cycles uint64
		for _, q := range ds.Queries {
			want, err := exact.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			cycles += r.LastStats().Cycles
			in := map[int]bool{}
			for _, w := range want {
				in[w.ID] = true
			}
			for _, g := range got {
				total++
				if in[g.ID] {
					hits++
				}
			}
		}
		if cycles == 0 {
			t.Errorf("%v: no simulated cycles reported", cfg.Mode)
		}
		if recall := float64(hits) / float64(total); recall < 0.5 {
			t.Errorf("%v device recall = %v", cfg.Mode, recall)
		}
		r.Free()
	}
}

func TestDeviceIndexSetChecks(t *testing.T) {
	ds := devIndexDataset(t)
	r := buildRegion(t, ds, ssam.Config{
		Mode: ssam.KDTree, Execution: ssam.Device, VectorLength: 4,
		Index: ssam.IndexParams{Checks: 2},
	})
	defer r.Free()
	if _, err := r.Search(ds.Queries[0], 5); err != nil {
		t.Fatal(err)
	}
	low := r.LastStats().Cycles
	if err := r.SetChecks(200); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(ds.Queries[0], 5); err != nil {
		t.Fatal(err)
	}
	high := r.LastStats().Cycles
	if high <= low {
		t.Fatalf("SetChecks did not increase device work: %d -> %d", low, high)
	}
}

func TestDeviceIndexBatch(t *testing.T) {
	ds := devIndexDataset(t)
	r := buildRegion(t, ds, ssam.Config{
		Mode: ssam.KMeans, Execution: ssam.Device, VectorLength: 4,
		Index: ssam.IndexParams{Checks: 32, Branching: 4},
	})
	defer r.Free()
	batch, err := r.SearchBatch(ds.Queries[:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range ds.Queries[:4] {
		seq, err := r.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range seq {
			if batch[i][j] != seq[j] {
				t.Fatalf("batch/seq mismatch at %d/%d", i, j)
			}
		}
	}
}
