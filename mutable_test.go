package ssam

import (
	"errors"
	"reflect"
	"testing"

	"ssam/internal/dataset"
	"ssam/internal/topk"
	"ssam/internal/vec"
)

func mutableRegion(t *testing.T, cfg Config) (*Region, *dataset.Dataset) {
	t.Helper()
	ds := regionDataset(t)
	r, err := New(ds.Dim(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Free)
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	return r, ds
}

// TestUpsertMigrationBitExact pins the migration guarantee: results
// before the first write (immutable engine) and after a content-neutral
// write sequence (mutable store) are bit-identical, because the store
// is seeded with ids equal to row indices under the same total order.
func TestUpsertMigrationBitExact(t *testing.T) {
	r, ds := mutableRegion(t, Config{Mode: Linear, Metric: Euclidean, Vaults: 4})
	q := ds.Queries[0]
	before, err := r.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mutable() || r.Seq() != 0 {
		t.Fatalf("unmutated region reports Mutable=%v Seq=%d", r.Mutable(), r.Seq())
	}

	// A write that does not change logical content: re-upsert row 0
	// with its own vector.
	seq, err := r.Upsert(0, ds.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || !r.Mutable() || r.Seq() != 1 {
		t.Fatalf("after first write: seq=%d Mutable=%v Seq()=%d", seq, r.Mutable(), r.Seq())
	}
	after, err := r.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("migration changed results:\n%v\n%v", before, after)
	}
	if r.Len() != ds.N() {
		t.Fatalf("Len = %d, want %d", r.Len(), ds.N())
	}
}

// TestRegionMutationEquivalence interleaves writes with searches and
// checks the region against a second region rebuilt from the surviving
// rows — the region-level version of the store property test.
func TestRegionMutationEquivalence(t *testing.T) {
	r, ds := mutableRegion(t, Config{Mode: Linear, Metric: Euclidean, Vaults: 4})
	n := ds.N()

	// Delete a band of rows and move a few others.
	for id := 100; id < 160; id++ {
		if _, ok, err := r.Delete(id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
	}
	moved := ds.Row(200)
	if _, err := r.Upsert(n+5, moved); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Upsert(50, ds.Row(300)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != n-60+1 {
		t.Fatalf("Len = %d, want %d", r.Len(), n-60+1)
	}

	// Rebuild the surviving logical content as a fresh immutable
	// region... except ids differ, so compare against a direct oracle.
	type row struct {
		id int
		v  []float32
	}
	var rows []row
	for id := 0; id < n; id++ {
		if id >= 100 && id < 160 {
			continue
		}
		v := ds.Row(id)
		if id == 50 {
			v = ds.Row(300)
		}
		rows = append(rows, row{id, v})
	}
	rows = append(rows, row{n + 5, moved})

	for _, q := range ds.Queries {
		got, err := r.Search(q, 12)
		if err != nil {
			t.Fatal(err)
		}
		sel := topk.New(12)
		for _, rw := range rows {
			sel.Push(rw.id, vec.Distance(vec.Euclidean, q, rw.v))
		}
		if want := sel.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("region diverges from oracle:\n%v\n%v", got, want)
		}
	}

	// Batch answers match single-query answers on the same content.
	out, err := r.SearchBatch(ds.Queries, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range ds.Queries {
		single, _ := r.Search(q, 12)
		if !reflect.DeepEqual(out[i], single) {
			t.Fatalf("batch query %d diverges", i)
		}
	}

	// Compaction is invisible to results.
	before, _ := r.Search(ds.Queries[1], 12)
	if _, err := r.CompactNow(); err != nil {
		t.Fatal(err)
	}
	after, _ := r.Search(ds.Queries[1], 12)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("compaction changed results")
	}

	// The staged Figure-4 sequence serves from the store too.
	if err := r.WriteQuery(ds.Queries[2]); err != nil {
		t.Fatal(err)
	}
	if err := r.Exec(12); err != nil {
		t.Fatal(err)
	}
	staged, err := r.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := r.Search(ds.Queries[2], 12)
	if !reflect.DeepEqual(staged, direct) {
		t.Fatal("Exec diverges from Search on a mutated region")
	}
}

func TestImmutableEnginesRejectMutation(t *testing.T) {
	ds := regionDataset(t)
	for _, mode := range []Mode{KDTree, KMeans, MPLSH, Graph, Quantized} {
		r, err := New(ds.Dim(), Config{Mode: mode, Metric: Euclidean})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.LoadFloat32(ds.Data); err != nil {
			t.Fatal(err)
		}
		if err := r.BuildIndex(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Upsert(0, ds.Row(0)); !errors.Is(err, ErrImmutableEngine) {
			t.Fatalf("%v Upsert err = %v, want ErrImmutableEngine", mode, err)
		}
		if _, _, err := r.Delete(0); !errors.Is(err, ErrImmutableEngine) {
			t.Fatalf("%v Delete err = %v, want ErrImmutableEngine", mode, err)
		}
		r.Free()
	}
}

func TestMutationErrors(t *testing.T) {
	ds := regionDataset(t)
	r, err := New(ds.Dim(), Config{Mode: Linear})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Upsert(0, ds.Row(0)); err == nil {
		t.Fatal("Upsert before BuildIndex accepted")
	}
	if _, err := r.CompactNow(); err == nil {
		t.Fatal("CompactNow before mutation accepted")
	}
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Upsert(0, ds.Row(0)[:3]); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := r.UpsertBinary(0, vec.NewBinary(8)); err == nil {
		t.Fatal("binary upsert on float region accepted")
	}
	if _, err := r.Upsert(0, ds.Row(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.MutationStats(); !ok {
		t.Fatal("MutationStats not available after mutation")
	}

	// Reload resets the write path: the stale store is dropped.
	if err := r.LoadFloat32(ds.Data); err != nil {
		t.Fatal(err)
	}
	if r.Mutable() || r.Seq() != 0 {
		t.Fatalf("reload kept the store: Mutable=%v Seq=%d", r.Mutable(), r.Seq())
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	r.Free()
	if _, err := r.Upsert(0, ds.Row(0)); !errors.Is(err, ErrFreed) {
		t.Fatalf("Upsert after Free = %v", err)
	}
	if _, err := r.CompactNow(); !errors.Is(err, ErrFreed) {
		t.Fatalf("CompactNow after Free = %v", err)
	}
}

func TestHammingRegionMutation(t *testing.T) {
	const bits, n = 64, 120
	codes := make([]BinaryCode, n)
	for i := range codes {
		c := NewBinaryCode(bits)
		for b := 0; b < bits; b++ {
			c.Set(b, (i>>uint(b%7))&1 == 1)
		}
		codes[i] = c
	}
	r, err := New(bits, Config{Mode: Linear, Metric: Hamming, Vaults: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Free()
	if err := r.LoadBinary(codes); err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	q := codes[3]
	before, err := r.SearchBinary(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Upsert(0, []float32{1}); err == nil {
		t.Fatal("float upsert on Hamming region accepted")
	}
	seq, err := r.UpsertBinary(3, codes[3])
	if err != nil || seq != 1 {
		t.Fatalf("UpsertBinary: seq=%d err=%v", seq, err)
	}
	after, err := r.SearchBinary(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("content-neutral binary upsert changed results:\n%v\n%v", before, after)
	}
	if _, ok, err := r.Delete(7); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	res, err := r.SearchBinary(codes[7], n)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res {
		if rr.ID == 7 {
			t.Fatal("deleted code still returned")
		}
	}
	if r.Len() != n-1 {
		t.Fatalf("Len = %d, want %d", r.Len(), n-1)
	}
}

// TestDeviceRegionMutation checks the Device execution path: results
// come from the host-side store (bit-identical to Host execution on the
// same content) and the device prices the scan analytically with
// non-zero stats that track the live row count.
func TestDeviceRegionMutation(t *testing.T) {
	r, ds := mutableRegion(t, Config{Mode: Linear, Metric: Euclidean, Execution: Device, VectorLength: 4})
	host, _ := mutableRegion(t, Config{Mode: Linear, Metric: Euclidean})
	q := ds.Queries[0]

	for _, reg := range []*Region{r, host} {
		if _, _, err := reg.Delete(9); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Upsert(2000, ds.Row(9)); err != nil {
			t.Fatal(err)
		}
	}
	devRes, devSt, err := r.SearchStats(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	hostRes, _, err := host.SearchStats(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(devRes, hostRes) {
		t.Fatalf("device/host divergence on mutated region:\n%v\n%v", devRes, hostRes)
	}
	if devSt.Cycles == 0 || devSt.DRAMBytesRead == 0 || devSt.ProcessingUnits == 0 {
		t.Fatalf("analytic device stats empty: %+v", devSt)
	}
	if got := r.LastStats(); got != devSt {
		t.Fatalf("LastStats %+v != returned %+v", got, devSt)
	}

	// Deleting rows shrinks the analytic scan cost.
	for id := 0; id < 700; id++ {
		r.Delete(id)
	}
	_, smaller, err := r.SearchStats(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if smaller.DRAMBytesRead >= devSt.DRAMBytesRead {
		t.Fatalf("DRAM read did not shrink: %d -> %d", devSt.DRAMBytesRead, smaller.DRAMBytesRead)
	}

	// Batch on the device path aggregates per-query analytic stats.
	out, err := r.SearchBatch(ds.Queries[:3], 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("batch returned %d result sets", len(out))
	}
	agg := r.LastStats()
	if agg.Cycles == 0 || agg.ProcessingUnits == 0 {
		t.Fatalf("batch analytic stats empty: %+v", agg)
	}
}

func TestCompactHookFires(t *testing.T) {
	r, _ := mutableRegion(t, Config{Mode: Linear, Metric: Euclidean, Vaults: 2})
	fired := make(chan CompactResult, 1)
	r.SetCompactHook(func(cr CompactResult) {
		select {
		case fired <- cr:
		default:
		}
	})
	// Every other row, so both vaults cross the garbage threshold.
	for id := 0; id < 1500; id += 2 {
		if _, ok, err := r.Delete(id); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", id, ok, err)
		}
	}
	res, err := r.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed() {
		t.Fatalf("compaction did not run: %+v", res)
	}
	select {
	case cr := <-fired:
		if cr.RowsDropped == 0 {
			t.Fatalf("hook saw empty result: %+v", cr)
		}
	default:
		t.Fatal("compact hook never fired")
	}
	st, ok := r.MutationStats()
	if !ok || st.Dead != 0 || st.Deletes != 750 {
		t.Fatalf("stats after compaction: %+v ok=%v", st, ok)
	}
}
