package ssam

import (
	"errors"
	"fmt"
	"time"

	"ssam/internal/mutate"
	"ssam/internal/obs"
	"ssam/internal/vec"
)

// ErrImmutableEngine is returned by Upsert and Delete on regions whose
// engine cannot take writes. Only Linear regions are mutable: the index
// structures (kd-tree forests, k-means trees, LSH tables, and the
// layered graph) bake row positions into their geometry at build time,
// so an in-place write would silently corrupt recall; they require a
// rebuild (see DESIGN.md §11).
var ErrImmutableEngine = errors.New("ssam: engine does not support mutation; only Linear regions are mutable")

// MutationStats is a point-in-time view of a mutable region's write
// state (sequence number, live/dead rows, compaction counters).
type MutationStats = mutate.StoreStats

// CompactResult summarizes one compaction pass over a mutable region.
type CompactResult = mutate.CompactResult

// DefaultCompactInterval is the background compactor period for regions
// that migrate to the mutable store.
const DefaultCompactInterval = 200 * time.Millisecond

// regionStore holds the mutable store a Linear region migrates to on
// its first write — exactly one of f (float metrics) or b (Hamming) is
// set.
type regionStore struct {
	f *mutate.Store[[]float32]
	b *mutate.Store[vec.Binary]
}

func (ms *regionStore) len() int {
	if ms.b != nil {
		return ms.b.Len()
	}
	return ms.f.Len()
}

func (ms *regionStore) stats() MutationStats {
	if ms.b != nil {
		return ms.b.Stats()
	}
	return ms.f.Stats()
}

func (ms *regionStore) close() {
	if ms.b != nil {
		ms.b.Close()
	} else {
		ms.f.Close()
	}
}

func (ms *regionStore) compactOnce() CompactResult {
	if ms.b != nil {
		return ms.b.CompactOnce()
	}
	return ms.f.CompactOnce()
}

// mutable returns the region's store if it has migrated to the write
// path (lock-free; the search fast paths call this per query).
func (r *Region) mutable() *regionStore { return r.mut.Load() }

// Mutable reports whether the region has taken at least one write and
// is serving from the mutable store.
func (r *Region) Mutable() bool { return r.mut.Load() != nil }

// Seq returns the region's last committed mutation sequence number
// (zero before the first write).
func (r *Region) Seq() uint64 {
	if ms := r.mut.Load(); ms != nil {
		if ms.b != nil {
			return ms.b.Seq()
		}
		return ms.f.Seq()
	}
	return 0
}

// MutationStats returns the region's write-path counters; ok is false
// if the region has never been mutated.
func (r *Region) MutationStats() (MutationStats, bool) {
	ms := r.mut.Load()
	if ms == nil {
		return MutationStats{}, false
	}
	return ms.stats(), true
}

// SetCompactHook installs fn to run after every compaction pass that
// changes the region's physical layout (the server uses it to emit
// compaction traces and counters). It applies to the current store and
// any future migration; fn runs on the compactor goroutine.
func (r *Region) SetCompactHook(fn func(CompactResult)) {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	r.onCompact = fn
	if ms := r.mut.Load(); ms != nil {
		if ms.b != nil {
			ms.b.OnCompact = fn
		} else {
			ms.f.OnCompact = fn
		}
	}
}

// CompactNow runs one synchronous compaction pass, for deterministic
// tests and the server's POST /regions/{name}/compact endpoint. It is
// an error on a region that has never been mutated (there is nothing to
// compact before the first write).
func (r *Region) CompactNow() (CompactResult, error) {
	if r.freed {
		return CompactResult{}, ErrFreed
	}
	ms := r.mut.Load()
	if ms == nil {
		return CompactResult{}, errors.New("ssam: CompactNow on an unmutated region")
	}
	return ms.compactOnce(), nil
}

// Upsert inserts vector v under id (replacing any existing row with
// that id) and returns the committed mutation sequence number. The
// first write migrates a Linear region from its immutable engine to the
// mutable store, seeded with the loaded dataset under ids 0..n-1;
// searches before and after migration are bit-identical on the same
// logical content. Safe to call concurrently with searches and other
// mutations. Non-Linear regions return ErrImmutableEngine.
func (r *Region) Upsert(id int, v []float32) (uint64, error) {
	if r.cfg.Metric == Hamming {
		return 0, errors.New("ssam: float upsert on a Hamming region; use UpsertBinary")
	}
	if len(v) != r.dims {
		return 0, fmt.Errorf("ssam: row dim %d, want %d", len(v), r.dims)
	}
	ms, err := r.migrate()
	if err != nil {
		return 0, err
	}
	return ms.f.Upsert(id, v)
}

// UpsertBinary is Upsert for Hamming regions.
func (r *Region) UpsertBinary(id int, c BinaryCode) (uint64, error) {
	if r.cfg.Metric != Hamming {
		return 0, errors.New("ssam: binary upsert on a non-Hamming region")
	}
	if c.Dim != r.dims {
		return 0, fmt.Errorf("ssam: code width %d, want %d", c.Dim, r.dims)
	}
	ms, err := r.migrate()
	if err != nil {
		return 0, err
	}
	return ms.b.Upsert(id, c)
}

// Delete tombstones the row with the given id, reporting whether it was
// present; a miss does not commit a sequence number. Like Upsert, the
// first write migrates a Linear region to the mutable store.
func (r *Region) Delete(id int) (seq uint64, ok bool, err error) {
	ms, err := r.migrate()
	if err != nil {
		return 0, false, err
	}
	if ms.b != nil {
		seq, ok = ms.b.Delete(id)
	} else {
		seq, ok = ms.f.Delete(id)
	}
	return seq, ok, nil
}

// migrate returns the region's mutable store, performing the one-time
// engine-to-store migration on first use. Concurrent first writes are
// serialized by mutMu; searches never take that lock — they observe the
// migration through the atomic pointer, and because the store is seeded
// with exactly the engine's rows under ids equal to row indices, a
// query racing the flip returns bit-identical results either way.
func (r *Region) migrate() (*regionStore, error) {
	if ms := r.mut.Load(); ms != nil {
		return ms, nil
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if ms := r.mut.Load(); ms != nil {
		return ms, nil
	}
	if r.freed {
		return nil, ErrFreed
	}
	if r.cfg.Mode != Linear {
		return nil, ErrImmutableEngine
	}
	if r.cfg.Storage != nil {
		// Storage-backed regions are immutable: the backing file is the
		// dataset, and the RCU store has no out-of-core write path yet
		// (see ROADMAP follow-ups).
		return nil, fmt.Errorf("%w: storage-backed region", ErrImmutableEngine)
	}
	if !r.built {
		return nil, errors.New("ssam: mutation before BuildIndex")
	}
	opts := mutate.Options{Vaults: r.cfg.Vaults}
	ms := &regionStore{}
	if r.cfg.Metric == Hamming {
		ms.b = mutate.NewBinary(r.dims, opts)
		n := len(r.codes)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		if err := ms.b.Seed(ids, r.codes); err != nil {
			return nil, err
		}
		ms.b.OnCompact = r.onCompact
		ms.b.StartCompactor(DefaultCompactInterval)
	} else {
		ms.f = mutate.NewFloat(r.dims, r.cfg.Metric.toVec(), opts)
		n := len(r.data) / r.dims
		ids := make([]int, n)
		rows := make([][]float32, n)
		for i := range ids {
			ids[i] = i
			rows[i] = r.data[i*r.dims : (i+1)*r.dims]
		}
		if err := ms.f.Seed(ids, rows); err != nil {
			return nil, err
		}
		ms.f.OnCompact = r.onCompact
		ms.f.StartCompactor(DefaultCompactInterval)
	}
	r.mut.Store(ms)
	return ms, nil
}

// dropStore closes and detaches the mutable store (dataset reload and
// Free): the region reverts to pure load-then-search state.
func (r *Region) dropStore() {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if ms := r.mut.Load(); ms != nil {
		ms.close()
		r.mut.Store(nil)
	}
}

// searchMutable answers a float query from the mutable store. For
// Device execution the store computes the results (the cycle simulator
// scans a frozen layout) and the device prices the scan analytically —
// same result bits, modeled cost.
func (r *Region) searchMutable(ms *regionStore, q []float32, k int, sp *obs.Span) ([]Result, DeviceStats, error) {
	execTag := "host"
	if r.device != nil {
		execTag = "device"
	}
	esp := sp.Start("exec",
		obs.Tag{Key: "execution", Value: execTag},
		obs.Tag{Key: "mutable", Value: true},
		obs.Tag{Key: "vaults", Value: ms.f.Vaults()})
	res, st := ms.f.SearchStatsSpan(q, k, esp)
	if esp != nil {
		esp.SetTag("seq", st.Seq)
		esp.SetTag("live_rows", st.DistEvals)
	}
	esp.End()
	if r.device != nil {
		// st.DistEvals is exactly the live rows the device would scan.
		dst := toDeviceStats(r.device.ApproxLinearStats(st.DistEvals))
		r.mu.Lock()
		r.lastStats = dst
		r.mu.Unlock()
		return res, dst, nil
	}
	return res, DeviceStats{}, nil
}

// searchMutableBinary is searchMutable for Hamming queries.
func (r *Region) searchMutableBinary(ms *regionStore, q BinaryCode, k int, sp *obs.Span) ([]Result, DeviceStats, error) {
	execTag := "host"
	if r.device != nil {
		execTag = "device"
	}
	esp := sp.Start("exec",
		obs.Tag{Key: "execution", Value: execTag},
		obs.Tag{Key: "mutable", Value: true},
		obs.Tag{Key: "vaults", Value: ms.b.Vaults()})
	res, st := ms.b.SearchStatsSpan(q, k, esp)
	if esp != nil {
		esp.SetTag("seq", st.Seq)
		esp.SetTag("live_rows", st.DistEvals)
	}
	esp.End()
	if r.device != nil {
		dst := toDeviceStats(r.device.ApproxLinearStats(st.DistEvals))
		r.mu.Lock()
		r.lastStats = dst
		r.mu.Unlock()
		return res, dst, nil
	}
	return res, DeviceStats{}, nil
}

// searchMutableBatch answers a float batch from the mutable store, all
// queries against one snapshot generation.
func (r *Region) searchMutableBatch(ms *regionStore, qs [][]float32, k int, sp *obs.Span) ([][]Result, error) {
	execTag := "host"
	if r.device != nil {
		execTag = "device"
	}
	live := ms.f.Len()
	esp := sp.Start("exec",
		obs.Tag{Key: "execution", Value: execTag},
		obs.Tag{Key: "mutable", Value: true},
		obs.Tag{Key: "batch", Value: len(qs)},
		obs.Tag{Key: "vaults", Value: ms.f.Vaults()})
	out := ms.f.SearchBatch(qs, k, r.cfg.Workers, esp)
	esp.End()
	if r.device != nil {
		per := r.device.ApproxLinearStats(live)
		var agg DeviceStats
		for range qs {
			agg.Cycles += per.Cycles
			agg.Seconds += per.Seconds
			agg.Instructions += per.Instructions
			agg.VectorInstructions += per.VectorInsts
			agg.DRAMBytesRead += per.DRAMBytesRead
			agg.ProcessingUnits = per.PUs
		}
		r.mu.Lock()
		r.lastStats = agg
		r.mu.Unlock()
	}
	return out, nil
}
